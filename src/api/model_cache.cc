#include "api/model_cache.h"

#include <cstdio>

#include "graph/snapshot.h"

namespace habit::api {

namespace {

// FNV-1a accumulation over a trivially copyable value.
void HashValue(const void* data, size_t n, uint64_t* h) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    *h ^= bytes[i];
    *h *= 1099511628211ULL;
  }
}

// Structural fingerprint of a training set: per-trip identity, size, and
// time/position endpoints. O(#trips), no per-point work — strong enough
// that two different datasets under the same spec never share a key.
uint64_t FingerprintTrips(const std::vector<ais::Trip>& trips) {
  uint64_t h = 1469598103934665603ULL;
  const uint64_t count = trips.size();
  HashValue(&count, sizeof(count), &h);
  for (const ais::Trip& trip : trips) {
    HashValue(&trip.trip_id, sizeof(trip.trip_id), &h);
    HashValue(&trip.mmsi, sizeof(trip.mmsi), &h);
    const uint64_t points = trip.points.size();
    HashValue(&points, sizeof(points), &h);
    if (!trip.points.empty()) {
      for (const ais::AisRecord* r :
           {&trip.points.front(), &trip.points.back()}) {
        HashValue(&r->ts, sizeof(r->ts), &h);
        HashValue(&r->pos.lat, sizeof(r->pos.lat), &h);
        HashValue(&r->pos.lng, sizeof(r->pos.lng), &h);
      }
    }
  }
  return h;
}

std::string HexSuffix(char tag, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "@%c%016llx", tag,
                static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace

Result<std::string> ModelCache::CacheKey(const MethodSpec& spec,
                                         const std::vector<ais::Trip>& trips) {
  std::string key = spec.ToString();
  const std::string load_path = spec.GetString("load", "");
  if (!load_path.empty()) {
    // O(1) fingerprint: the stored checksum identifies the artifact's
    // content, so the same spec over a replaced snapshot file keys a
    // distinct entry. Probe failure means the load would fail too.
    HABIT_ASSIGN_OR_RETURN(const graph::SnapshotInfo info,
                           graph::ProbeSnapshot(load_path));
    key += HexSuffix('s', info.checksum);
  } else if (!trips.empty()) {
    // Trips-built model: the dataset is part of the identity, otherwise
    // "habit:r=9" trained on KIEL would be served for SAR queries.
    key += HexSuffix('t', FingerprintTrips(trips));
  }
  return key;
}

std::string ModelCache::TripsKeySuffix(const std::vector<ais::Trip>& trips) {
  if (trips.empty()) return "";
  return HexSuffix('t', FingerprintTrips(trips));
}

size_t ModelCache::EraseKeysWithSuffix(const std::string& suffix) {
  if (suffix.empty()) return 0;
  size_t erased = 0;
  core::MutexLock lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.ends_with(suffix)) {
      total_bytes_ -= it->bytes;
      index_.erase(it->key);
      it = lru_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  return erased;
}

Result<std::shared_ptr<const ImputationModel>> ModelCache::Get(
    const MethodSpec& spec, const std::vector<ais::Trip>& trips) {
  HABIT_ASSIGN_OR_RETURN(const std::string key, CacheKey(spec, trips));
  std::shared_ptr<InFlight> flight;
  bool builder = false;
  {
    core::MutexLock lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->model;
    }
    // Single-flight: the first miss on a key builds; concurrent misses on
    // the same key wait on the builder's flight and share its result, so
    // N simultaneous cold requests pay one load instead of N.
    const auto [fit, inserted] = inflight_.try_emplace(key);
    if (inserted) {
      fit->second = std::make_shared<InFlight>();
      builder = true;
      ++stats_.misses;
    } else {
      ++stats_.coalesced;
    }
    flight = fit->second;
  }

  if (!builder) {
    core::MutexLock wait_lock(flight->mu);
    while (!flight->done) flight->cv.Wait(flight->mu);
    return flight->result;
  }

  // Build outside the lock: a load or retrain can take seconds and must
  // not serialize unrelated cache traffic (misses on other keys keep
  // building concurrently).
  Result<std::shared_ptr<const ImputationModel>> result =
      BuildAndInsert(key, spec, trips);

  // Publish to waiters, then retire the flight. Order matters only in
  // that the cache insert (inside BuildAndInsert) precedes the erase:
  // a Get arriving in between finds either the cached entry or the
  // still-open flight, never a gap that would trigger a second build.
  {
    core::MutexLock publish_lock(flight->mu);
    flight->result = result;
    flight->done = true;
  }
  flight->cv.NotifyAll();
  {
    core::MutexLock lock(mu_);
    inflight_.erase(key);
  }
  return result;
}

Result<std::shared_ptr<const ImputationModel>> ModelCache::BuildAndInsert(
    const std::string& key, const MethodSpec& spec,
    const std::vector<ais::Trip>& trips) {
  HABIT_ASSIGN_OR_RETURN(std::unique_ptr<ImputationModel> built,
                         MakeModel(spec, trips));
  std::shared_ptr<const ImputationModel> model = std::move(built);

  // save= writes a snapshot as a side effect of building; a cached repeat
  // would skip it, so such specs always pass through.
  if (spec.params.contains("save")) return model;

  // Re-key after the build: the artifact may have been replaced between
  // the fingerprint probe and the load. Caching what we just loaded under
  // the pre-replacement key would serve the wrong model forever after a
  // rollback to the original file — serve this one uncached instead. A
  // probe *failure* (artifact unlinked mid-load — a pattern the mmap path
  // explicitly supports, the mapped graph outlives the file) gets the
  // same treatment: the build succeeded, so serve the model rather than
  // manufacturing an error; it just cannot be keyed. (Only load= keys can
  // race; a trips fingerprint is deterministic, so skip the re-hash for
  // trips-built misses.)
  if (spec.params.contains("load")) {
    const Result<std::string> key_after_build = CacheKey(spec, trips);
    if (!key_after_build.ok() || key_after_build.value() != key) {
      return model;
    }
  }

  core::MutexLock lock(mu_);
  Insert(key, model);
  return model;
}

Result<std::shared_ptr<const ImputationModel>> ModelCache::Get(
    const std::string& spec, const std::vector<ais::Trip>& trips) {
  HABIT_ASSIGN_OR_RETURN(const MethodSpec parsed, MethodSpec::Parse(spec));
  return Get(parsed, trips);
}

void ModelCache::Insert(
    const std::string& key,
    const std::shared_ptr<const ImputationModel>& model) {
  const size_t bytes = model->SizeBytes();
  if (bytes > byte_budget_) return;  // would evict everything and still not fit
  lru_.push_front(Entry{key, model, bytes});
  index_[key] = lru_.begin();
  total_bytes_ += bytes;
  while (total_bytes_ > byte_budget_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    total_bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

size_t ModelCache::SizeBytes() const {
  core::MutexLock lock(mu_);
  return total_bytes_;
}

size_t ModelCache::num_models() const {
  core::MutexLock lock(mu_);
  return lru_.size();
}

ModelCache::Stats ModelCache::stats() const {
  core::MutexLock lock(mu_);
  return stats_;
}

void ModelCache::Clear() {
  core::MutexLock lock(mu_);
  lru_.clear();
  index_.clear();
  total_bytes_ = 0;
}

}  // namespace habit::api
