// String-keyed model construction: benches, CLIs, and tests select an
// imputation method by name plus key=value parameters instead of hard
// wiring concrete types.
//
//   "habit"                 -> HABIT with default parameters
//   "habit:r=9,p=w"         -> HABIT, resolution 9, data-median projection
//   "gti:rm=250,rd=5e-4"    -> GTI with both radii set
//   "sli"                   -> straight-line baseline
//
// The registry holds one factory per method name; RegisterBuiltinModels
// (adapters.h) installs the methods shipped with the repo, and future
// subsystems (a serving frontend, sharded backends) can register their own.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ais/ais.h"
#include "api/imputation_model.h"

namespace habit::api {

/// \brief A parsed method selector: method name + key=value parameters.
struct MethodSpec {
  std::string method;                         ///< registry key ("habit")
  std::map<std::string, std::string> params;  ///< e.g. {{"r","9"},{"p","w"}}

  /// Parses "method" or "method:k1=v1,k2=v2". Fails with kInvalidArgument
  /// on an empty method name, a malformed parameter list, or a duplicate
  /// key (so no two distinct spec strings canonicalize to one ToString()).
  /// Values cannot contain ',' (there is no escaping in the spec grammar);
  /// callers with such values — e.g. a save=/load= path with a comma —
  /// must Parse first and insert into `params` directly, as habit_cli
  /// does.
  static Result<MethodSpec> Parse(const std::string& spec);

  /// Canonical round-trippable form ("habit:p=w,r=9"; params sorted).
  std::string ToString() const;

  /// Typed parameter accessors: the default when the key is absent, or
  /// kInvalidArgument when the value does not parse.
  Result<int> GetInt(const std::string& key, int default_value) const;
  Result<int64_t> GetInt64(const std::string& key,
                           int64_t default_value) const;
  Result<double> GetDouble(const std::string& key,
                           double default_value) const;
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;

  /// kInvalidArgument when `params` contains a key outside `known` —
  /// factories call this so a typo ("habit:res=9") fails loudly instead of
  /// silently running with defaults.
  Status CheckKnownKeys(const std::vector<std::string>& known) const;
};

/// Builds a model of the named method from training trips.
using ModelFactory = std::function<Result<std::unique_ptr<ImputationModel>>(
    const MethodSpec& spec, const std::vector<ais::Trip>& trips)>;

/// \brief Name -> factory table for imputation methods.
class ModelRegistry {
 public:
  /// The process-wide registry with all built-in methods installed.
  static ModelRegistry& Global();

  /// Registers a method. Fails with kAlreadyExists on a duplicate name.
  Status Register(const std::string& name, const std::string& description,
                  ModelFactory factory);

  bool Has(const std::string& name) const { return entries_.contains(name); }

  /// Registered method names, sorted.
  std::vector<std::string> MethodNames() const;

  /// One-line description of a registered method ("" when unknown).
  std::string Description(const std::string& name) const;

  /// Builds a model: looks up spec.method and invokes its factory. Fails
  /// with kInvalidArgument for unknown method names.
  Result<std::unique_ptr<ImputationModel>> Make(
      const MethodSpec& spec, const std::vector<ais::Trip>& trips) const;

 private:
  struct Entry {
    std::string description;
    ModelFactory factory;
  };
  std::map<std::string, Entry> entries_;
};

/// Parses `spec` and builds the model through the global registry.
Result<std::unique_ptr<ImputationModel>> MakeModel(
    const std::string& spec, const std::vector<ais::Trip>& trips);

/// Builds the model for an already-parsed spec through the global registry.
Result<std::unique_ptr<ImputationModel>> MakeModel(
    const MethodSpec& spec, const std::vector<ais::Trip>& trips);

}  // namespace habit::api
