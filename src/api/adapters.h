// Adapters wrapping each concrete imputation framework behind the unified
// api::ImputationModel interface, plus the registration hook that installs
// them into a ModelRegistry under their string keys:
//
//   "habit"        HabitFramework        r, p, t, cost, expand, snap,
//                                        threads, save, load
//   "habit_typed"  TypedHabitFramework   habit params + min_trips
//   "gti"          GtiModel              rm, rd, resample, save, load
//   "palmto"       PalmtoModel           r, n, timeout, max_tokens, seed,
//                                        save, load
//   "sli"          StraightLineImpute    points
//
// save=<path> writes a binary model snapshot after the build; load=<path>
// cold-starts the model from one in O(read) — MakeModel(spec, {}) with an
// empty trips vector serves a persisted model without retraining.
//
// Most callers never name these classes — they go through MakeModel. The
// HABIT adapters are exposed because persistence tooling (habit_cli) and
// trip-level helpers need the underlying framework.
#pragma once

#include <memory>

#include "api/registry.h"
#include "baselines/gti.h"
#include "baselines/palmto.h"
#include "habit/framework.h"
#include "habit/typed_framework.h"

namespace habit::api {

/// Installs every built-in method into `registry` (called once by
/// ModelRegistry::Global(); call it manually only on private registries).
void RegisterBuiltinModels(ModelRegistry& registry);

/// \brief "habit": adapter over core::HabitFramework.
///
/// ImputeBatch runs every query against the frozen CSR graph with one flat
/// search scratch per worker thread (spec parameter `threads`, default 1):
/// the scratch's generation-stamped arrays make per-query reuse free, and
/// the batch partitions across threads with no shared mutable state.
class HabitModel : public ImputationModel {
 public:
  static Result<std::unique_ptr<ImputationModel>> Make(
      const MethodSpec& spec, const std::vector<ais::Trip>& trips);

  std::string Name() const override { return "HABIT"; }
  std::string Configuration() const override;
  Result<ImputeResponse> Impute(const ImputeRequest& request) const override;
  std::vector<Result<ImputeResponse>> ImputeBatch(
      std::span<const ImputeRequest> requests,
      std::vector<double>* query_seconds) const override;
  size_t SizeBytes() const override { return framework_->SizeBytes(); }
  size_t SerializedSizeBytes() const override {
    return framework_->SerializedSizeBytes();
  }

  /// The wrapped framework (graph access for persistence / trip helpers).
  const core::HabitFramework& framework() const { return *framework_; }

 private:
  HabitModel(std::unique_ptr<core::HabitFramework> framework, int threads)
      : framework_(std::move(framework)), threads_(threads) {}

  std::unique_ptr<core::HabitFramework> framework_;
  int threads_ = 1;
};

/// \brief "habit_typed": adapter over core::TypedHabitFramework.
///
/// Requests carrying a vessel_type are routed to the matching per-type
/// graph (with transparent fallback to the combined graph); requests
/// without one query the combined graph directly.
class TypedHabitModel : public ImputationModel {
 public:
  static Result<std::unique_ptr<ImputationModel>> Make(
      const MethodSpec& spec, const std::vector<ais::Trip>& trips);

  std::string Name() const override { return "HABIT-T"; }
  std::string Configuration() const override;
  Result<ImputeResponse> Impute(const ImputeRequest& request) const override;
  std::vector<Result<ImputeResponse>> ImputeBatch(
      std::span<const ImputeRequest> requests,
      std::vector<double>* query_seconds) const override;
  size_t SizeBytes() const override;
  size_t SerializedSizeBytes() const override {
    return framework_->SerializedSizeBytes();
  }

  const core::TypedHabitFramework& framework() const { return *framework_; }

 private:
  TypedHabitModel(std::unique_ptr<core::TypedHabitFramework> framework,
                  std::string configuration, int threads)
      : framework_(std::move(framework)),
        configuration_(std::move(configuration)),
        threads_(threads) {}

  std::unique_ptr<core::TypedHabitFramework> framework_;
  std::string configuration_;
  int threads_ = 1;
};

}  // namespace habit::api
