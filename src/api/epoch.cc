#include "api/epoch.h"

#include <unordered_set>
#include <utility>

namespace habit::api {

namespace {

using Clock = std::chrono::steady_clock;

std::chrono::nanoseconds SecondsToNanos(double seconds) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(seconds));
}

}  // namespace

Result<std::unique_ptr<EpochPipeline>> EpochPipeline::Make(
    ModelCache* cache, Options options, std::vector<ais::Trip> base) {
  HABIT_ASSIGN_OR_RETURN(MethodSpec spec, MethodSpec::Parse(options.spec));
  // The live spec is built from the cumulative trip set, every epoch.
  // load= would ignore the trips (frozen artifact), save= would rewrite a
  // file per epoch as a silent side effect, threads= nests pools — all
  // the served-spec policy, enforced here too because the pipeline builds
  // on its own thread, not through the server's request path.
  for (const char* banned : {"load", "save", "threads"}) {
    if (spec.params.contains(banned)) {
      return Status::InvalidArgument(
          std::string(banned) +
          "= is not allowed in an ingest spec (live epochs are rebuilt "
          "from the cumulative trip set)");
    }
  }
  std::unique_ptr<EpochPipeline> pipeline(
      new EpochPipeline(cache, std::move(options), std::move(spec),
                        std::move(base)));
  {
    core::MutexLock lock(pipeline->mu_);
    if (!pipeline->trips_->empty()) {
      // Pre-warm epoch 0 so a bad spec fails at startup, not on the first
      // request, and the first query never pays the cold build.
      auto model = cache->Get(pipeline->spec_, *pipeline->trips_);
      if (!model.ok()) return model.status();
    }
  }
  return pipeline;
}

EpochPipeline::EpochPipeline(ModelCache* cache, Options options,
                             MethodSpec spec, std::vector<ais::Trip> base)
    : cache_(cache),
      options_(std::move(options)),
      spec_(std::move(spec)),
      spec_string_(spec_.ToString()) {
  core::MutexLock lock(mu_);
  delta_.NoteBaseTrips(base);
  trips_ = std::make_shared<const std::vector<ais::Trip>>(std::move(base));
  builder_ = std::thread([this] { BuilderMain(); });
}

EpochPipeline::~EpochPipeline() { Stop(); }

void EpochPipeline::Stop() {
  std::thread builder;
  {
    core::MutexLock lock(mu_);
    stop_ = true;
    builder.swap(builder_);
  }
  builder_cv_.NotifyAll();
  epoch_cv_.NotifyAll();
  if (builder.joinable()) builder.join();
}

Status EpochPipeline::Ingest(std::vector<ais::Trip> trips,
                             uint64_t* accepted, uint64_t* pending,
                             uint64_t* epoch) {
  if (trips.empty()) {
    return Status::InvalidArgument("\"trips\" must not be empty");
  }
  core::MutexLock lock(mu_);
  if (stop_) return Status::Internal("epoch pipeline is stopped");
  size_t batch_bytes = 0;
  for (const ais::Trip& trip : trips) {
    batch_bytes +=
        sizeof(ais::Trip) + trip.points.size() * sizeof(ais::AisRecord);
  }
  if (delta_.pending_bytes() + batch_bytes > options_.max_pending_bytes) {
    return Status::OutOfRange(
        "ingest backlog of " + std::to_string(delta_.pending_bytes()) +
        " bytes would exceed " + std::to_string(options_.max_pending_bytes) +
        " — roll over (or wait for the epoch trigger) first");
  }
  // All-or-nothing: validate the whole batch (including intra-batch
  // duplicate ids) before staging anything, the impute fail-fast idiom.
  std::unordered_set<int64_t> batch_ids;
  for (size_t i = 0; i < trips.size(); ++i) {
    Status valid = delta_.Validate(trips[i]);
    if (valid.ok() && !batch_ids.insert(trips[i].trip_id).second) {
      valid = Status::AlreadyExists("trip_id " +
                                    std::to_string(trips[i].trip_id) +
                                    " appears twice in this batch");
    }
    if (!valid.ok()) {
      return Status(valid.code(),
                    "trips[" + std::to_string(i) + "]: " + valid.message());
    }
  }
  const bool was_empty = delta_.pending_trips() == 0;
  for (ais::Trip& trip : trips) {
    // Validated above; Add re-validates but cannot fail now.
    const Status added = delta_.Add(std::move(trip));
    if (!added.ok()) return Status::Internal(added.message());
  }
  if (was_empty && options_.epoch_seconds > 0) {
    deadline_ = Clock::now() + SecondsToNanos(options_.epoch_seconds);
  }
  trigger_armed_ = true;
  if (accepted != nullptr) *accepted = trips.size();
  if (pending != nullptr) *pending = delta_.pending_trips();
  if (epoch != nullptr) *epoch = epoch_;
  builder_cv_.NotifyAll();
  return Status::OK();
}

Result<uint64_t> EpochPipeline::Rollover() {
  core::MutexLock lock(mu_);
  if (stop_) return Status::Internal("epoch pipeline is stopped");
  const uint64_t target = epoch_;
  const uint64_t failures_before = build_failures_;
  rollover_requested_ = true;
  trigger_armed_ = true;
  builder_cv_.NotifyAll();
  while (epoch_ <= target && build_failures_ == failures_before && !stop_) {
    epoch_cv_.Wait(mu_);
  }
  if (epoch_ > target) return epoch_;
  if (stop_) return Status::Internal("epoch pipeline is stopped");
  return Status::Internal("epoch build failed: " + last_error_);
}

Result<EpochedModel> EpochPipeline::Resolve(const MethodSpec& spec) {
  std::shared_ptr<const std::vector<ais::Trip>> trips;
  uint64_t epoch = 0;
  {
    core::MutexLock lock(mu_);
    trips = trips_;
    epoch = epoch_;
  }
  if (trips->empty()) {
    return Status::NotFound(
        "epoch " + std::to_string(epoch) +
        " has no training trips yet — ingest deltas and roll over first");
  }
  // The cache key carries this epoch's trips fingerprint, so concurrent
  // epochs are distinct entries and a mid-request swap cannot redirect
  // this resolution: the snapshot captured above IS the request's epoch.
  auto model = cache_->Get(spec, *trips);
  if (!model.ok()) return model.status();
  return EpochedModel{epoch, model.value()};
}

EpochPipeline::Stats EpochPipeline::stats() const {
  core::MutexLock lock(mu_);
  Stats stats;
  stats.epoch = epoch_;
  stats.pending_trips = delta_.pending_trips();
  stats.pending_points = delta_.pending_points();
  stats.ingested_trips = delta_.accepted_total();
  stats.rollovers = rollovers_;
  stats.epoch_trips = trips_->size();
  stats.building = building_;
  stats.last_build_seconds = last_build_seconds_;
  stats.last_error = last_error_;
  return stats;
}

void EpochPipeline::BuilderMain() {
  while (true) {
    std::vector<ais::Trip> delta;
    std::shared_ptr<const std::vector<ais::Trip>> base;
    {
      core::MutexLock lock(mu_);
      while (!stop_) {
        const bool has_pending = delta_.pending_trips() > 0;
        const bool count_due = options_.epoch_trips > 0 && trigger_armed_ &&
                               delta_.pending_trips() >= options_.epoch_trips;
        const bool timer_live =
            options_.epoch_seconds > 0 && trigger_armed_ && has_pending;
        const bool time_due = timer_live && Clock::now() >= deadline_;
        if (rollover_requested_ || count_due || time_due) break;
        if (timer_live) {
          builder_cv_.WaitFor(mu_, deadline_ - Clock::now());
        } else {
          builder_cv_.Wait(mu_);
        }
      }
      if (stop_) return;
      rollover_requested_ = false;
      building_ = true;
      delta = delta_.Drain();
      base = trips_;
    }

    // The freeze, unlocked: serving and ingest continue on the current
    // epoch while this runs. MergeEpochTrips copies `delta` so a failed
    // build can requeue it without losing ingest order.
    const auto started = Clock::now();
    Status built = Status::OK();
    std::shared_ptr<const std::vector<ais::Trip>> next = base;
    if (!delta.empty()) {
      auto merged = std::make_shared<std::vector<ais::Trip>>(
          graph::MergeEpochTrips(*base, delta));
      // Pre-warm the configured spec through the shared cache: the swap
      // publishes an epoch whose model is already resident, so the first
      // post-rollover request never pays the rebuild. Other specs resolve
      // lazily against the new trips via the same fingerprinted keys.
      auto model = cache_->Get(spec_, *merged);
      if (model.ok()) {
        next = std::move(merged);
      } else {
        built = model.status();
      }
    }
    const double seconds =
        std::chrono::duration<double>(Clock::now() - started).count();

    const std::string old_suffix = ModelCache::TripsKeySuffix(*base);
    {
      core::MutexLock lock(mu_);
      building_ = false;
      last_build_seconds_ = seconds;
      if (built.ok()) {
        trips_ = next;
        ++epoch_;
        ++rollovers_;
        last_error_.clear();
        // Retire the superseded epoch's cache entries before the swap is
        // announced, so a Rollover() caller that wakes on epoch_cv_ sees
        // the eviction already done. Readers that resolved earlier hold
        // shared_ptr handles — eviction never invalidates an in-flight
        // request — and a reader racing this section at worst misses and
        // rebuilds the old epoch once. (Lock order: mu_ before the
        // cache's own mutex; the cache never calls back into the
        // pipeline, so the nesting cannot invert.)
        if (next != base) cache_->EraseKeysWithSuffix(old_suffix);
      } else {
        // Keep the data: the drained delta goes back at the front of the
        // pending queue, and auto-triggers disarm until the next ingest
        // or explicit rollover so a persistent failure cannot hot-loop.
        delta_.Requeue(std::move(delta));
        trigger_armed_ = false;
        ++build_failures_;
        last_error_ = built.ToString();
      }
      epoch_cv_.NotifyAll();
    }
  }
}

}  // namespace habit::api
