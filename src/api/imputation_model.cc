#include "api/imputation_model.h"

#include "core/stopwatch.h"

namespace habit::api {

Status ValidateRequest(const ImputeRequest& request) {
  if (!request.gap_start.IsValid() || !request.gap_end.IsValid()) {
    return Status::InvalidArgument("invalid gap endpoint " +
                                   request.gap_start.ToString() + " -> " +
                                   request.gap_end.ToString());
  }
  if (request.t_end < request.t_start) {
    return Status::InvalidArgument(
        "gap time span is negative (t_start=" +
        std::to_string(request.t_start) +
        " > t_end=" + std::to_string(request.t_end) + ")");
  }
  return Status::OK();
}

std::vector<Result<ImputeResponse>> ImputationModel::ImputeBatch(
    std::span<const ImputeRequest> requests,
    std::vector<double>* query_seconds) const {
  std::vector<Result<ImputeResponse>> responses;
  responses.reserve(requests.size());
  if (query_seconds != nullptr) {
    query_seconds->clear();
    query_seconds->reserve(requests.size());
  }
  for (const ImputeRequest& request : requests) {
    Stopwatch sw;
    responses.push_back(Impute(request));
    if (query_seconds != nullptr) {
      query_seconds->push_back(sw.ElapsedSeconds());
    }
  }
  return responses;
}

}  // namespace habit::api
