#include "api/imputation_model.h"

#include "core/stopwatch.h"

namespace habit::api {

std::vector<Result<ImputeResponse>> ImputationModel::ImputeBatch(
    std::span<const ImputeRequest> requests,
    std::vector<double>* query_seconds) const {
  std::vector<Result<ImputeResponse>> responses;
  responses.reserve(requests.size());
  if (query_seconds != nullptr) {
    query_seconds->clear();
    query_seconds->reserve(requests.size());
  }
  for (const ImputeRequest& request : requests) {
    Stopwatch sw;
    responses.push_back(Impute(request));
    if (query_seconds != nullptr) {
      query_seconds->push_back(sw.ElapsedSeconds());
    }
  }
  return responses;
}

}  // namespace habit::api
