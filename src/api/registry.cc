#include "api/registry.h"

#include <limits>

#include "api/adapters.h"
#include "core/parse.h"

namespace habit::api {

Result<MethodSpec> MethodSpec::Parse(const std::string& spec) {
  MethodSpec out;
  const size_t colon = spec.find(':');
  out.method = spec.substr(0, colon);
  if (out.method.empty()) {
    return Status::InvalidArgument("empty method name in spec '" + spec + "'");
  }
  if (colon == std::string::npos) return out;

  // Split the parameter section on ',' into key=value pairs.
  const std::string param_str = spec.substr(colon + 1);
  size_t pos = 0;
  while (pos <= param_str.size()) {
    const size_t comma = param_str.find(',', pos);
    const std::string pair = param_str.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? param_str.size() + 1 : comma + 1;
    if (pair.empty()) {
      if (comma == std::string::npos && param_str.empty()) break;
      return Status::InvalidArgument("empty parameter in spec '" + spec + "'");
    }
    const size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0 || eq == pair.size() - 1) {
      return Status::InvalidArgument("parameter '" + pair + "' in spec '" +
                                     spec + "' is not key=value");
    }
    // Reject duplicate keys instead of letting the last one win: cache
    // keys derived from ToString() must never alias two user intents
    // ("habit:r=9,r=10" silently becoming r=10).
    const auto [it, inserted] =
        out.params.emplace(pair.substr(0, eq), pair.substr(eq + 1));
    if (!inserted) {
      return Status::InvalidArgument("duplicate parameter '" + it->first +
                                     "' in spec '" + spec + "'");
    }
  }
  return out;
}

std::string MethodSpec::ToString() const {
  std::string out = method;
  bool first = true;
  for (const auto& [key, value] : params) {
    out += first ? ':' : ',';
    first = false;
    out += key + "=" + value;
  }
  return out;
}

Result<int> MethodSpec::GetInt(const std::string& key,
                               int default_value) const {
  HABIT_ASSIGN_OR_RETURN(const int64_t v, GetInt64(key, default_value));
  if (v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    return Status::InvalidArgument("parameter " + key + "=" +
                                   std::to_string(v) + " overflows int");
  }
  return static_cast<int>(v);
}

Result<int64_t> MethodSpec::GetInt64(const std::string& key,
                                     int64_t default_value) const {
  const auto it = params.find(key);
  if (it == params.end()) return default_value;
  const auto v = core::ParseInt64(it->second);
  if (!v.ok()) {
    return Status::InvalidArgument("parameter " + key + "=" + it->second +
                                   " is not an integer");
  }
  return v.value();
}

Result<double> MethodSpec::GetDouble(const std::string& key,
                                     double default_value) const {
  const auto it = params.find(key);
  if (it == params.end()) return default_value;
  const auto v = core::ParseDouble(it->second);
  if (!v.ok()) {
    return Status::InvalidArgument("parameter " + key + "=" + it->second +
                                   " is not a finite number");
  }
  return v.value();
}

std::string MethodSpec::GetString(const std::string& key,
                                  const std::string& default_value) const {
  const auto it = params.find(key);
  return it == params.end() ? default_value : it->second;
}

Status MethodSpec::CheckKnownKeys(
    const std::vector<std::string>& known) const {
  for (const auto& [key, value] : params) {
    bool found = false;
    for (const std::string& k : known) {
      if (k == key) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::string hint;
      for (const std::string& k : known) {
        hint += hint.empty() ? k : ", " + k;
      }
      return Status::InvalidArgument("method '" + method +
                                     "' has no parameter '" + key +
                                     "' (known: " + hint + ")");
    }
  }
  return Status::OK();
}

ModelRegistry& ModelRegistry::Global() {
  static ModelRegistry* registry = [] {
    auto* r = new ModelRegistry();
    RegisterBuiltinModels(*r);
    return r;
  }();
  return *registry;
}

Status ModelRegistry::Register(const std::string& name,
                               const std::string& description,
                               ModelFactory factory) {
  if (name.empty() || factory == nullptr) {
    return Status::InvalidArgument("model registration needs a name and a "
                                   "factory");
  }
  const auto [it, inserted] =
      entries_.emplace(name, Entry{description, std::move(factory)});
  if (!inserted) {
    return Status::AlreadyExists("method '" + name + "' already registered");
  }
  return Status::OK();
}

std::vector<std::string> ModelRegistry::MethodNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

std::string ModelRegistry::Description(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? "" : it->second.description;
}

Result<std::unique_ptr<ImputationModel>> ModelRegistry::Make(
    const MethodSpec& spec, const std::vector<ais::Trip>& trips) const {
  const auto it = entries_.find(spec.method);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& [name, entry] : entries_) {
      known += known.empty() ? name : ", " + name;
    }
    return Status::InvalidArgument("unknown method '" + spec.method +
                                   "' (registered: " + known + ")");
  }
  return it->second.factory(spec, trips);
}

Result<std::unique_ptr<ImputationModel>> MakeModel(
    const std::string& spec, const std::vector<ais::Trip>& trips) {
  HABIT_ASSIGN_OR_RETURN(const MethodSpec parsed, MethodSpec::Parse(spec));
  return ModelRegistry::Global().Make(parsed, trips);
}

Result<std::unique_ptr<ImputationModel>> MakeModel(
    const MethodSpec& spec, const std::vector<ais::Trip>& trips) {
  return ModelRegistry::Global().Make(spec, trips);
}

}  // namespace habit::api
