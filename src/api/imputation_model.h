// The unified imputation query surface. Every method in the repo — HABIT,
// its vessel-type-aware variant, and the GTI / PaLMTO / SLI baselines —
// is served behind one polymorphic ImputationModel, so benches, examples,
// tests, and (eventually) a serving frontend program against a single
// stable interface instead of per-method signatures.
//
//   auto model = habit::api::MakeModel("habit:r=9,p=w", train_trips);
//   habit::api::ImputeRequest req{gap_start, gap_end, t0, t1};
//   auto response = (*model)->Impute(req);
//
// Models are constructed by name through the ModelRegistry (registry.h);
// batch workloads go through ImputeBatch, which lets implementations
// amortize per-query state (HABIT reuses its A* search scratch).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ais/ais.h"
#include "core/status.h"
#include "geo/polyline.h"

namespace habit::api {

/// \brief One imputation query: a reporting gap to fill.
///
/// Subsumes every per-method signature: gap endpoints (all methods),
/// boundary timestamps (methods with a time model assign per-point times),
/// and an optional vessel type (routes type-aware models to the matching
/// per-type graph; typeless models ignore it).
struct ImputeRequest {
  geo::LatLng gap_start;  ///< last reported position before the gap
  geo::LatLng gap_end;    ///< first reported position after the gap
  int64_t t_start = 0;    ///< timestamp of gap_start, unix seconds
  int64_t t_end = 0;      ///< timestamp of gap_end, unix seconds
  /// Vessel type of the querying vessel, when known.
  std::optional<ais::VesselType> vessel_type;
  /// Identity (MMSI) of the querying vessel, when known. Metadata only:
  /// no model conditions on it — it feeds the serving layer's
  /// distinct-vessel HyperLogLog, so it must never affect imputation
  /// output (byte-identity across the router depends on that).
  std::optional<int64_t> vessel_id;
};

/// \brief Validates a request before it reaches any model.
///
/// kInvalidArgument when either endpoint is non-finite or outside valid
/// geographic bounds, or when the time span is negative (t_end < t_start;
/// an empty span t_end == t_start is legal — such requests carry no time
/// model and get no interpolated timestamps). Every adapter's Impute /
/// ImputeBatch applies this uniformly, and the serving frontend rejects
/// invalid requests before resolving a model, so garbage input never
/// reaches H3 indexing or timestamp interpolation — and never triggers a
/// multi-second snapshot load.
Status ValidateRequest(const ImputeRequest& request);

/// \brief One imputed gap fill.
struct ImputeResponse {
  /// The imputed path, starting at the gap start point and ending at the
  /// gap end point.
  geo::Polyline path;
  /// Timestamps assigned to `path` points by arc-length interpolation
  /// between the boundary times (same size as `path`; empty when the
  /// request carried no time span).
  std::vector<int64_t> timestamps;
  /// Search effort (settled nodes / generated tokens), 0 when the method
  /// does not search.
  size_t expanded = 0;
};

/// \brief Abstract imputation method: built once from training trips,
/// queried many times.
///
/// Implementations adapt the concrete frameworks (see adapters.h) and are
/// constructed through the ModelRegistry. All queries are const and safe
/// to issue repeatedly; per-query failures (unreachable endpoints, query
/// timeouts) surface as non-OK Results, never as exceptions.
class ImputationModel {
 public:
  virtual ~ImputationModel() = default;

  /// Display name of the method ("HABIT", "GTI", ...).
  virtual std::string Name() const = 0;

  /// Human-readable parameterization ("r=9 t=250 p=w"), stable per model.
  virtual std::string Configuration() const = 0;

  /// Answers one imputation query.
  virtual Result<ImputeResponse> Impute(const ImputeRequest& request) const = 0;

  /// \brief Answers a batch of queries; result i corresponds to request i.
  ///
  /// The default implementation loops over Impute. Overrides may amortize
  /// per-query overhead (HABIT reuses one A* search scratch across the
  /// whole batch). When `query_seconds` is non-null it receives the
  /// per-query wall time (one entry per request, including failed ones) —
  /// the latency the paper's Table 4 reports.
  virtual std::vector<Result<ImputeResponse>> ImputeBatch(
      std::span<const ImputeRequest> requests,
      std::vector<double>* query_seconds = nullptr) const;

  /// Wall-clock seconds the model took to build (0 for buildless methods).
  double BuildSeconds() const { return build_seconds_; }

  /// In-memory model footprint in bytes.
  virtual size_t SizeBytes() const = 0;

  /// Persisted-model footprint in bytes (Table 2's "storage size").
  /// Defaults to the in-memory footprint for methods without a dedicated
  /// serialization format.
  virtual size_t SerializedSizeBytes() const { return SizeBytes(); }

 protected:
  /// Set by factories after timing the build.
  double build_seconds_ = 0;
};

}  // namespace habit::api
