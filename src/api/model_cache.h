// ModelCache: a byte-budgeted LRU in front of the model registry, so a
// serving process pays the snapshot load (or retrain) once per model and
// answers every repeat MakeModel in O(1).
//
// Keying. An entry is identified by the canonical MethodSpec::ToString()
// (duplicate spec keys are rejected at parse time, so the canonical form
// cannot alias two intents) plus a dataset fingerprint:
//   load= specs   the snapshot's stored checksum via graph::ProbeSnapshot,
//                 an O(1) header+trailer read — a cache hit never re-reads
//                 a multi-GB artifact, and replacing the snapshot file
//                 with a different model creates a distinct entry instead
//                 of serving stale bytes;
//   trips-built   a structural hash of the training trips (ids, sizes,
//                 time/position endpoints), so the same spec trained on
//                 two datasets ("habit:r=9" on KIEL vs SAR) never aliases
//                 to one entry.
//
// Eviction. Entries are charged their exact ImputationModel::SizeBytes()
// (for HABIT/GTI an exact CSR-array sum) and evicted least-recently-used
// until the configured byte budget holds. Handles are
// shared_ptr<const ImputationModel>: eviction only drops the cache's
// reference, so a model stays alive — and an in-flight ImputeBatch stays
// valid — until the last caller releases it.
//
// Specs with save= are built but never cached: caching would silently skip
// the snapshot-writing side effect on repeat calls.
//
// Artifact lifecycle. Every Get of a load= spec probes the snapshot
// header, so the file must stay probeable for lookups to resolve —
// refresh artifacts by atomic rename over the old path (the snapshot
// writer's own tmp+rename idiom), not by unlinking. Unlinking only breaks
// *lookups*: handles already handed out (including mmap-backed models,
// which pin the file contents) keep serving.
//
// Thread safety: all operations lock; concurrent Get of a missing key may
// build the model more than once (last insert wins), which trades a rare
// duplicate build for never holding the lock across a multi-second load.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ais/ais.h"
#include "api/imputation_model.h"
#include "api/registry.h"

namespace habit::api {

/// \brief Byte-budgeted LRU cache of built imputation models.
class ModelCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  /// Models are cached while their total SizeBytes() stays within
  /// `byte_budget`; a single model larger than the whole budget is built
  /// and returned but never cached.
  explicit ModelCache(size_t byte_budget) : byte_budget_(byte_budget) {}

  /// Returns the cached model for `spec` or builds it through the global
  /// registry (`trips` is only consulted on a miss; load= specs cold-start
  /// from their snapshot with empty trips).
  Result<std::shared_ptr<const ImputationModel>> Get(
      const MethodSpec& spec, const std::vector<ais::Trip>& trips = {});
  Result<std::shared_ptr<const ImputationModel>> Get(
      const std::string& spec, const std::vector<ais::Trip>& trips = {});

  /// The cache key `spec` resolves to: canonical spec string plus the
  /// dataset fingerprint (snapshot checksum for load= specs, a structural
  /// trips hash otherwise). Fails when the snapshot cannot be probed (a
  /// model that could not be loaded is never keyed).
  static Result<std::string> CacheKey(
      const MethodSpec& spec, const std::vector<ais::Trip>& trips = {});

  size_t byte_budget() const { return byte_budget_; }
  size_t SizeBytes() const;    ///< bytes currently cached
  size_t num_models() const;   ///< entries currently cached
  Stats stats() const;

  /// Drops every cached entry (in-flight handles stay valid).
  void Clear();

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const ImputationModel> model;
    size_t bytes = 0;
  };

  /// Inserts behind the lock, evicting LRU entries past the budget.
  void Insert(const std::string& key,
              const std::shared_ptr<const ImputationModel>& model);

  mutable std::mutex mu_;
  size_t byte_budget_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  size_t total_bytes_ = 0;
  Stats stats_;
};

}  // namespace habit::api
