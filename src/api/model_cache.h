// ModelCache: a byte-budgeted LRU in front of the model registry, so a
// serving process pays the snapshot load (or retrain) once per model and
// answers every repeat MakeModel in O(1).
//
// Keying. An entry is identified by the canonical MethodSpec::ToString()
// (duplicate spec keys are rejected at parse time, so the canonical form
// cannot alias two intents) plus a dataset fingerprint:
//   load= specs   the snapshot's stored checksum via graph::ProbeSnapshot,
//                 an O(1) header+trailer read — a cache hit never re-reads
//                 a multi-GB artifact, and replacing the snapshot file
//                 with a different model creates a distinct entry instead
//                 of serving stale bytes;
//   trips-built   a structural hash of the training trips (ids, sizes,
//                 time/position endpoints), so the same spec trained on
//                 two datasets ("habit:r=9" on KIEL vs SAR) never aliases
//                 to one entry.
//
// Eviction. Entries are charged their exact ImputationModel::SizeBytes()
// (for HABIT/GTI an exact CSR-array sum) and evicted least-recently-used
// until the configured byte budget holds. Handles are
// shared_ptr<const ImputationModel>: eviction only drops the cache's
// reference, so a model stays alive — and an in-flight ImputeBatch stays
// valid — until the last caller releases it.
//
// Specs with save= are built but never cached: caching would silently skip
// the snapshot-writing side effect on repeat calls.
//
// Artifact lifecycle. Every Get of a load= spec probes the snapshot
// header, so the file must stay probeable for lookups to resolve —
// refresh artifacts by atomic rename over the old path (the snapshot
// writer's own tmp+rename idiom), not by unlinking. Unlinking only breaks
// *lookups*: handles already handed out (including mmap-backed models,
// which pin the file contents) keep serving.
//
// Thread safety: all operations lock, but no build runs under the cache
// lock. Concurrent Get misses on the same key are single-flighted: the
// first caller becomes the builder, later callers wait on its in-flight
// entry and share the winner's result (model or error) instead of
// re-loading — under a serving frontend, N simultaneous cold requests for
// one model pay exactly one multi-second snapshot load. Misses on
// *different* keys still build concurrently.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ais/ais.h"
#include "core/sync.h"
#include "core/thread_annotations.h"
#include "api/imputation_model.h"
#include "api/registry.h"

namespace habit::api {

/// \brief Byte-budgeted LRU cache of built imputation models.
class ModelCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;     ///< Gets that triggered a build
    uint64_t evictions = 0;
    /// Gets that joined another caller's in-flight build of the same key
    /// instead of building again (neither a hit nor a miss: no build was
    /// triggered, but nothing was served from the cache either).
    uint64_t coalesced = 0;
  };

  /// Models are cached while their total SizeBytes() stays within
  /// `byte_budget`; a single model larger than the whole budget is built
  /// and returned but never cached.
  explicit ModelCache(size_t byte_budget) : byte_budget_(byte_budget) {}

  /// Returns the cached model for `spec` or builds it through the global
  /// registry (`trips` is only consulted on a miss; load= specs cold-start
  /// from their snapshot with empty trips).
  Result<std::shared_ptr<const ImputationModel>> Get(
      const MethodSpec& spec, const std::vector<ais::Trip>& trips = {})
      EXCLUDES(mu_);
  Result<std::shared_ptr<const ImputationModel>> Get(
      const std::string& spec, const std::vector<ais::Trip>& trips = {})
      EXCLUDES(mu_);

  /// The cache key `spec` resolves to: canonical spec string plus the
  /// dataset fingerprint (snapshot checksum for load= specs, a structural
  /// trips hash otherwise). Fails when the snapshot cannot be probed (a
  /// model that could not be loaded is never keyed).
  static Result<std::string> CacheKey(
      const MethodSpec& spec, const std::vector<ais::Trip>& trips = {});

  size_t byte_budget() const { return byte_budget_; }
  size_t SizeBytes() const EXCLUDES(mu_);   ///< bytes currently cached
  size_t num_models() const EXCLUDES(mu_);  ///< entries currently cached
  Stats stats() const EXCLUDES(mu_);

  /// The "@t<hex>" fingerprint suffix trips-built keys carry for this
  /// training set ("" for an empty set, which is never suffixed). The
  /// epoch pipeline retires a superseded epoch by erasing its suffix:
  /// every spec resolved against that epoch's trips shares it.
  static std::string TripsKeySuffix(const std::vector<ais::Trip>& trips);

  /// Drops every cached entry whose key ends with `suffix` (no-op for an
  /// empty suffix). Handles already handed out stay valid — an old-epoch
  /// reader keeps its model until the last shared_ptr drops. Returns the
  /// number of entries dropped.
  size_t EraseKeysWithSuffix(const std::string& suffix) EXCLUDES(mu_);

  /// Drops every cached entry (in-flight handles stay valid).
  void Clear() EXCLUDES(mu_);

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const ImputationModel> model;
    size_t bytes = 0;
  };

  /// One in-flight build, shared between its builder and any coalesced
  /// waiters. The builder publishes into `result` under `mu` and wakes the
  /// waiters; the shared_ptr keeps it alive for late waiters even after
  /// the key leaves `inflight_`.
  struct InFlight {
    core::Mutex mu;
    core::CondVar cv;  ///< signaled once when the builder publishes
    bool done GUARDED_BY(mu) = false;
    Result<std::shared_ptr<const ImputationModel>> result GUARDED_BY(mu) =
        Status::Internal("build pending");
  };

  /// Builds `spec` through the registry and inserts it under `key` (unless
  /// the spec is uncacheable: save= side effects, or a load= artifact
  /// replaced mid-build). Runs outside mu_.
  Result<std::shared_ptr<const ImputationModel>> BuildAndInsert(
      const std::string& key, const MethodSpec& spec,
      const std::vector<ais::Trip>& trips);

  /// Inserts behind the lock, evicting LRU entries past the budget.
  void Insert(const std::string& key,
              const std::shared_ptr<const ImputationModel>& model)
      REQUIRES(mu_);

  /// Guards the LRU structure, the in-flight build registry, and the
  /// stats — everything but the builds themselves, which run unlocked.
  mutable core::Mutex mu_;
  size_t byte_budget_;  ///< immutable after construction
  std::list<Entry> lru_ GUARDED_BY(mu_);  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      GUARDED_BY(mu_);
  /// Builds currently in flight, keyed like `index_` (single-flight).
  std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight_
      GUARDED_BY(mu_);
  size_t total_bytes_ GUARDED_BY(mu_) = 0;
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace habit::api
