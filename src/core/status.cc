#include "core/status.h"

namespace habit {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kUnreachable:
      return "Unreachable";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace habit
