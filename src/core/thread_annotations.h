// Clang thread-safety-analysis attribute macros, no-ops off-Clang.
//
// These make the repo's lock invariants *compiler-enforced*: a member
// declared GUARDED_BY(mu_) cannot be read or written without holding mu_,
// a function declared REQUIRES(mu_) cannot be called without it, and the
// Clang build (CMake -DHABIT_THREAD_SAFETY=ON) promotes every violation
// to a hard error (-Werror=thread-safety). GCC and MSVC see empty macros
// and compile the same code unchecked.
//
// The analysis only fires on *annotated capability types*. libstdc++'s
// std::mutex carries no capability attributes, so annotating members
// GUARDED_BY a raw std::mutex would check nothing — concurrent code in
// this repo locks through the annotated wrappers in core/sync.h
// (core::Mutex / core::MutexLock / core::CondVar) instead. The repo
// linter (tools/lint/check_invariants.py) enforces that every mutex
// member has at least one GUARDED_BY-annotated peer, so an unannotated
// lock cannot silently slip back in.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define HABIT_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define HABIT_THREAD_ANNOTATION__(x)  // no-op off-Clang
#endif

/// Declares a type as a capability ("mutex" in diagnostics).
#define CAPABILITY(x) HABIT_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define SCOPED_CAPABILITY HABIT_THREAD_ANNOTATION__(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define GUARDED_BY(x) HABIT_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability.
#define PT_GUARDED_BY(x) HABIT_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function that may only be called while holding the given capabilities.
#define REQUIRES(...) \
  HABIT_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function that may only be called in *shared* (reader) mode.
#define REQUIRES_SHARED(...) \
  HABIT_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function that acquires the given capabilities and does not release them.
#define ACQUIRE(...) \
  HABIT_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  HABIT_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function that releases the given capabilities (held on entry).
#define RELEASE(...) \
  HABIT_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  HABIT_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Function that may NOT be called while holding the given capabilities
/// (deadlock prevention: public entry points EXCLUDES the lock they take).
#define EXCLUDES(...) HABIT_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Function that returns a reference to the capability guarding its class.
#define RETURN_CAPABILITY(x) HABIT_THREAD_ANNOTATION__(lock_returned(x))

/// Try-acquire: first argument is the success value.
#define TRY_ACQUIRE(...) \
  HABIT_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Escape hatch for code the analysis cannot model. Every use is a review
/// flag — prefer restructuring so the analysis can see the invariant.
#define NO_THREAD_SAFETY_ANALYSIS \
  HABIT_THREAD_ANNOTATION__(no_thread_safety_analysis)

/// Runtime assertion that a capability is held (tells the analysis so).
#define ASSERT_CAPABILITY(x) HABIT_THREAD_ANNOTATION__(assert_capability(x))
