// Checked string-to-number parsing: the strtod/strtoll-with-endptr idiom
// behind MethodSpec's typed accessors, habit_cli's argument parsing, and
// habit_serve's flag parsing. Unlike atof/atoi, these reject trailing
// garbage, overflow, and (for doubles) non-finite values, so "junk" or
// "1e999" never silently becomes a valid-looking number.
#pragma once

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "core/status.h"

namespace habit::core {

/// Parses a finite double from the whole of `text` (leading whitespace per
/// strtod; nothing may follow the number). kInvalidArgument on garbage,
/// partial parses, overflow, and inf/nan.
inline Result<double> ParseDouble(const std::string& text) {
  // strtod also accepts C99 hex floats ("0x10" -> 16.0); for arguments
  // that is garbage, not a number.
  if (text.find('x') != std::string::npos ||
      text.find('X') != std::string::npos) {
    return Status::InvalidArgument("'" + text + "' is not a finite number");
  }
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  // No errno test: glibc sets ERANGE on *underflow* while returning a
  // perfectly representable subnormal ("1e-310" must parse), and the
  // overflow case it would catch is already rejected by !isfinite.
  if (end == text.c_str() || *end != '\0' || !std::isfinite(v)) {
    return Status::InvalidArgument("'" + text + "' is not a finite number");
  }
  return v;
}

/// Parses a base-10 int64 from the whole of `text`. kInvalidArgument on
/// garbage, partial parses, and overflow.
inline Result<int64_t> ParseInt64(const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("'" + text + "' is not an integer");
  }
  return static_cast<int64_t>(v);
}

/// ParseInt64 narrowed to int, rejecting values that overflow it.
inline Result<int> ParseInt(const std::string& text) {
  HABIT_ASSIGN_OR_RETURN(const int64_t v, ParseInt64(text));
  if (v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    return Status::InvalidArgument("'" + text + "' overflows int");
  }
  return static_cast<int>(v);
}

}  // namespace habit::core
