// Wall-clock stopwatch and latency accumulator used by the evaluation
// harness (Table 4 of the paper reports avg/max imputation-query latency).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

namespace habit {

/// \brief Simple wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts timing from now.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Microseconds elapsed since construction or last Reset().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Accumulates per-query latencies and reports summary statistics.
class LatencyStats {
 public:
  void Add(double seconds) { samples_.push_back(seconds); }

  size_t count() const { return samples_.size(); }

  double Mean() const {
    if (samples_.empty()) return 0.0;
    double sum = 0;
    for (double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }

  double Max() const {
    if (samples_.empty()) return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
  }

  double Min() const {
    if (samples_.empty()) return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
  }

  /// q in [0,1]; linear interpolation between order statistics.
  double Quantile(double q) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    double pos = q * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }

 private:
  std::vector<double> samples_;
};

}  // namespace habit
