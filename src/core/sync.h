// Annotated synchronization primitives: thin wrappers over std::mutex /
// std::condition_variable that carry Clang thread-safety capability
// attributes, so GUARDED_BY / REQUIRES annotations across the repo are
// actually *checked* (libstdc++'s own types are unannotated — guarding a
// member with a raw std::mutex would compile but verify nothing).
//
// Usage mirrors the std types:
//
//   core::Mutex mu_;
//   core::CondVar cv_;
//   bool ready_ GUARDED_BY(mu_) = false;
//
//   {
//     core::MutexLock lock(mu_);
//     while (!ready_) cv_.Wait(mu_);   // explicit loop, not a predicate
//   }                                  // lambda — the analysis must SEE
//                                      // the guarded read under the lock
//
// Zero overhead: every method is an inline forward to the std call; the
// attributes vanish off-Clang (core/thread_annotations.h).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "core/thread_annotations.h"

namespace habit::core {

/// \brief Annotated std::mutex. Lock/Unlock are for the analysis-aware
/// RAII types below; prefer core::MutexLock over manual pairs.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }

  /// The wrapped handle — only CondVar needs it (std::condition_variable
  /// waits on std::mutex). Not a path around the analysis: waiting
  /// re-acquires before returning, so the capability state is unchanged.
  std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;  // lint: unguarded(the capability wrapper itself)
};

/// \brief RAII lock for core::Mutex (std::lock_guard with attributes).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief Condition variable paired with core::Mutex.
///
/// Wait takes the Mutex explicitly and REQUIRES it, so the analysis
/// verifies the caller holds the lock at every wait site. There is
/// deliberately no predicate overload: the idiomatic
/// `while (!cond) cv.Wait(mu);` keeps the guarded reads in the caller's
/// body where the analysis can check them (a predicate lambda would be
/// analyzed as a lockless function and rejected).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and re-acquires before returning.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native_handle(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // still locked; ownership stays with the caller
  }

  /// Wait with a deadline: returns false on timeout, true when notified.
  /// Same contract as Wait — spurious wakeups happen, callers re-check
  /// their condition in an explicit loop either way.
  bool WaitFor(Mutex& mu, std::chrono::nanoseconds timeout) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native_handle(), std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();  // still locked; ownership stays with the caller
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // lint: unguarded(wakeups need no guard)
};

}  // namespace habit::core
