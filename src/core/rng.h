// Deterministic pseudo-random utilities. All simulation and gap-injection
// code takes an explicit seed so every experiment is reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace habit {

/// \brief Seeded random number generator wrapping std::mt19937_64 with
/// convenience samplers used across the simulator and evaluation harness.
class Rng {
 public:
  explicit Rng(uint64_t seed) : gen_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(gen_);
  }

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(gen_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(gen_);
  }

  /// Exponential with the given rate (lambda).
  double Exponential(double rate) {
    return std::exponential_distribution<double>(rate)(gen_);
  }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace habit
