// Status / Result error model, loosely following the Arrow/RocksDB idiom:
// fallible operations return Status (or Result<T> for a value), never throw.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace habit {

/// \brief Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kIoError,
  kTimeout,
  kUnreachable,   ///< graph search could not connect the endpoints
  kInternal,
};

/// \brief Human-readable name of a StatusCode ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// An OK status carries no message and is cheap to copy. Functions that can
/// fail return Status (or Result<T>); callers must check ok() before using
/// any outputs.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Unreachable(std::string msg) {
    return Status(StatusCode::kUnreachable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status.
///
/// Mirrors arrow::Result. Access the value only after checking ok().
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : var_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. Must not be OK.
  Result(Status status) : var_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(var_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  const Status& status() const {
    static const Status ok_status;
    return ok() ? ok_status : std::get<Status>(var_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(var_);
  }
  T&& MoveValue() {
    assert(ok());
    return std::move(std::get<T>(var_));
  }

  /// Value if OK, otherwise the given default.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(var_) : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> var_;
};

/// Propagates a non-OK Status to the caller.
#define HABIT_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::habit::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

/// Assigns the value of a Result expression or propagates its error.
#define HABIT_ASSIGN_OR_RETURN(lhs, rexpr)   \
  auto HABIT_CONCAT_(_res_, __LINE__) = (rexpr);                  \
  if (!HABIT_CONCAT_(_res_, __LINE__).ok())                       \
    return HABIT_CONCAT_(_res_, __LINE__).status();               \
  lhs = HABIT_CONCAT_(_res_, __LINE__).MoveValue()

#define HABIT_CONCAT_INNER_(a, b) a##b
#define HABIT_CONCAT_(a, b) HABIT_CONCAT_INNER_(a, b)

}  // namespace habit
