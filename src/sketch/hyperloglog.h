// HyperLogLog cardinality sketch, backing minidb's APPROX_COUNT_DISTINCT —
// the aggregate the paper uses for distinct-vessel and distinct-trip counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace habit::sketch {

/// \brief HyperLogLog distinct-count estimator (Flajolet et al. 2007) with
/// linear-counting correction for small cardinalities.
///
/// The precision parameter p in [4, 18] gives 2^p one-byte registers and a
/// relative standard error of roughly 1.04 / sqrt(2^p) (~1.6% at p=12).
class HyperLogLog {
 public:
  /// Creates a sketch with 2^precision registers. Precision is clamped into
  /// [4, 18].
  explicit HyperLogLog(int precision = 12);

  /// Adds a pre-hashed 64-bit value.
  void AddHash(uint64_t hash);

  /// Adds a 64-bit integer key (hashed internally).
  void AddInt(uint64_t key);

  /// Adds a string key (hashed internally).
  void AddString(const std::string& key);

  /// Current cardinality estimate.
  double Estimate() const;

  /// Merges another sketch of the same precision (register-wise max).
  /// Sketches of different precision cannot be merged; returns false.
  bool Merge(const HyperLogLog& other);

  int precision() const { return precision_; }
  size_t SizeBytes() const { return registers_.size(); }

  /// 64-bit avalanche hash used for all keys (SplitMix64 finalizer).
  static uint64_t Hash64(uint64_t x);

 private:
  int precision_;
  std::vector<uint8_t> registers_;
};

}  // namespace habit::sketch
