#include "sketch/hyperloglog.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace habit::sketch {

namespace {

double AlphaM(size_t m) {
  switch (m) {
    case 16:
      return 0.673;
    case 32:
      return 0.697;
    case 64:
      return 0.709;
    default:
      return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

}  // namespace

HyperLogLog::HyperLogLog(int precision)
    : precision_(std::clamp(precision, 4, 18)),
      registers_(1ULL << precision_, 0) {}

uint64_t HyperLogLog::Hash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void HyperLogLog::AddHash(uint64_t hash) {
  const uint64_t index = hash >> (64 - precision_);
  const uint64_t tail = hash << precision_;
  // Rank = number of leading zeros in the remaining bits, + 1.
  const int rank =
      tail == 0 ? (64 - precision_ + 1) : (std::countl_zero(tail) + 1);
  uint8_t& reg = registers_[index];
  reg = std::max<uint8_t>(reg, static_cast<uint8_t>(rank));
}

void HyperLogLog::AddInt(uint64_t key) { AddHash(Hash64(key)); }

void HyperLogLog::AddString(const std::string& key) {
  // FNV-1a, then avalanche.
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  AddHash(Hash64(h));
}

double HyperLogLog::Estimate() const {
  const size_t m = registers_.size();
  double sum = 0.0;
  size_t zeros = 0;
  for (uint8_t r : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  double estimate = AlphaM(m) * static_cast<double>(m) *
                    static_cast<double>(m) / sum;
  // Small-range (linear counting) correction.
  if (estimate <= 2.5 * static_cast<double>(m) && zeros > 0) {
    estimate = static_cast<double>(m) *
               std::log(static_cast<double>(m) / static_cast<double>(zeros));
  }
  return estimate;
}

bool HyperLogLog::Merge(const HyperLogLog& other) {
  if (other.precision_ != precision_) return false;
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
  return true;
}

}  // namespace habit::sketch
