// Reservoir sampling (Vitter's algorithm R): uniform fixed-size sample of a
// stream, used for dataset downsampling experiments.
#pragma once

#include <cstddef>
#include <vector>

#include "core/rng.h"

namespace habit::sketch {

/// \brief Keeps a uniform random sample of at most `capacity` items from an
/// unbounded stream.
template <typename T>
class Reservoir {
 public:
  Reservoir(size_t capacity, uint64_t seed)
      : capacity_(capacity), rng_(seed) {}

  void Add(const T& item) {
    ++seen_;
    if (items_.size() < capacity_) {
      items_.push_back(item);
      return;
    }
    const uint64_t slot = static_cast<uint64_t>(
        rng_.UniformInt(0, static_cast<int64_t>(seen_) - 1));
    if (slot < capacity_) items_[slot] = item;
  }

  const std::vector<T>& items() const { return items_; }
  size_t seen() const { return seen_; }

 private:
  size_t capacity_;
  Rng rng_;
  size_t seen_ = 0;
  std::vector<T> items_;
};

}  // namespace habit::sketch
