#include "sketch/quantile.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace habit::sketch {

P2Quantile::P2Quantile(double q) : q_(std::clamp(q, 1e-6, 1.0 - 1e-6)) {
  warmup_.reserve(5);
}

void P2Quantile::Add(double value) {
  ++count_;
  if (warmup_.size() < 5) {
    warmup_.push_back(value);
    if (warmup_.size() == 5) {
      std::sort(warmup_.begin(), warmup_.end());
      for (int i = 0; i < 5; ++i) {
        heights_[i] = warmup_[i];
        positions_[i] = i + 1;
      }
      desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
      increments_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
    }
    return;
  }

  // Locate the cell containing the new observation and update extremes.
  int k;
  if (value < heights_[0]) {
    heights_[0] = value;
    k = 0;
  } else if (value >= heights_[4]) {
    heights_[4] = value;
    k = 3;
  } else {
    k = 0;
    for (int i = 1; i < 4; ++i) {
      if (value < heights_[i]) break;
      k = i;
    }
  }
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust interior markers with the parabolic formula (linear fallback).
  for (int i = 1; i < 4; ++i) {
    const double d = desired_[i] - positions_[i];
    const double dp = positions_[i + 1] - positions_[i];
    const double dm = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && dp > 1.0) || (d <= -1.0 && dm < -1.0)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      // Classic P^2 parabolic prediction; linear fallback when the result
      // would violate monotonicity of the marker heights.
      const double candidate =
          heights_[i] +
                  sign * ((positions_[i] - positions_[i - 1] + sign) *
                              (heights_[i + 1] - heights_[i]) /
                              (positions_[i + 1] - positions_[i]) +
                          (positions_[i + 1] - positions_[i] - sign) *
                              (heights_[i] - heights_[i - 1]) /
                              (positions_[i] - positions_[i - 1])) /
                      (positions_[i + 1] - positions_[i - 1]);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        // Linear update toward the neighbor in the direction of motion.
        const int nb = i + static_cast<int>(sign);
        heights_[i] += sign * (heights_[nb] - heights_[i]) /
                       (positions_[nb] - positions_[i]);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::Estimate() const {
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  if (warmup_.size() < 5 || count_ <= 5) {
    std::vector<double> v = warmup_;
    std::sort(v.begin(), v.end());
    const double pos = q_ * static_cast<double>(v.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return v[lo] * (1.0 - frac) + v[hi] * frac;
  }
  return heights_[2];
}

double ExactMedian::Median() const {
  if (values_.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> v = values_;
  const size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  double upper = v[mid];
  if (v.size() % 2 == 1) return upper;
  std::nth_element(v.begin(), v.begin() + mid - 1, v.begin() + mid);
  return (v[mid - 1] + upper) / 2.0;
}

}  // namespace habit::sketch
