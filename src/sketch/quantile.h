// Streaming quantile estimation. minidb's MEDIAN aggregate is exact by
// default (matching DuckDB's `median`); the P^2 estimator provides a
// constant-memory approximate alternative used in the ablation benches.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

namespace habit::sketch {

/// \brief P^2 (piecewise-parabolic) single-quantile estimator
/// (Jain & Chlamtac 1985). O(1) memory, one pass.
class P2Quantile {
 public:
  /// q in (0, 1); e.g. 0.5 for the median.
  explicit P2Quantile(double q = 0.5);

  void Add(double value);

  /// Current estimate; exact while fewer than 5 observations have been seen.
  double Estimate() const;

  size_t count() const { return count_; }

 private:
  double q_;
  size_t count_ = 0;
  std::array<double, 5> heights_{};     // marker heights
  std::array<double, 5> positions_{};   // actual marker positions
  std::array<double, 5> desired_{};     // desired marker positions
  std::array<double, 5> increments_{};  // desired position increments
  std::vector<double> warmup_;          // first five observations
};

/// \brief Exact running median over a bounded value buffer. Kept simple:
/// stores all values; Median() sorts a scratch copy on demand.
class ExactMedian {
 public:
  void Add(double value) { values_.push_back(value); }
  /// NaN if empty; midpoint convention for even counts.
  double Median() const;
  size_t count() const { return values_.size(); }
  size_t SizeBytes() const { return values_.size() * sizeof(double); }

 private:
  std::vector<double> values_;
};

}  // namespace habit::sketch
