// Fluent query builder: chains minidb operators into a pipeline, mirroring
// how the paper composes its DuckDB CTE. Errors are deferred: the first
// failing stage short-circuits and Execute() returns its Status.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "minidb/ops.h"

namespace habit::db {

/// \brief Deferred operator pipeline over a source table.
///
/// Example (the paper's per-cell statistics, Section 3.2):
///   auto stats = Query(trips)
///       .WindowLag({"trip_id"}, "ts", "cell", "lag_cell")
///       .GroupBy({"cell"}, {{AggKind::kCount, "", "cnt"},
///                           {AggKind::kApproxCountDistinct, "vessel_id",
///                            "vessels"},
///                           {AggKind::kMedianExact, "lon", "med_lon"}})
///       .Execute();
class Query {
 public:
  explicit Query(Table table) : table_(std::move(table)) {}

  Query& Filter(const ExprPtr& predicate);
  Query& Project(const std::vector<ProjectionSpec>& specs);
  Query& SortBy(const std::vector<SortKey>& keys);
  Query& WindowLag(const std::vector<std::string>& partition_by,
                   const std::string& order_by, const std::string& target,
                   const std::string& output_name);
  Query& GroupBy(const std::vector<std::string>& keys,
                 const std::vector<AggSpec>& aggs, int hll_precision = 12);
  Query& Limit(size_t n);

  /// Runs the pipeline; returns the final table or the first error.
  Result<Table> Execute();

 private:
  template <typename F>
  Query& Apply(F&& f);

  Table table_;
  Status status_;
};

/// Entry point mirroring `SELECT ... FROM table`.
inline Query From(Table table) { return Query(std::move(table)); }

}  // namespace habit::db
