#include "minidb/aggregate.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace habit::db {

const char* AggKindToString(AggKind kind) {
  switch (kind) {
    case AggKind::kCount: return "count";
    case AggKind::kCountNonNull: return "count_non_null";
    case AggKind::kSum: return "sum";
    case AggKind::kAvg: return "avg";
    case AggKind::kMin: return "min";
    case AggKind::kMax: return "max";
    case AggKind::kFirst: return "first";
    case AggKind::kLast: return "last";
    case AggKind::kMedianExact: return "median";
    case AggKind::kMedianP2: return "approx_median";
    case AggKind::kApproxCountDistinct: return "approx_count_distinct";
    case AggKind::kStddev: return "stddev";
    case AggKind::kVariance: return "variance";
  }
  return "?";
}

DataType AggOutputType(AggKind kind, DataType input) {
  switch (kind) {
    case AggKind::kCount:
    case AggKind::kCountNonNull:
    case AggKind::kApproxCountDistinct:
      return DataType::kInt64;
    case AggKind::kSum:
      return input == DataType::kInt64 ? DataType::kInt64 : DataType::kDouble;
    case AggKind::kAvg:
    case AggKind::kMedianExact:
    case AggKind::kMedianP2:
    case AggKind::kStddev:
    case AggKind::kVariance:
      return DataType::kDouble;
    case AggKind::kMin:
    case AggKind::kMax:
    case AggKind::kFirst:
    case AggKind::kLast:
      return input;
  }
  return DataType::kDouble;
}

namespace {

class CountAgg : public Aggregator {
 public:
  explicit CountAgg(bool non_null_only) : non_null_only_(non_null_only) {}
  void Add(const Value& v) override {
    if (!non_null_only_ || !v.is_null()) ++count_;
  }
  Value Finish() const override { return Value::Int(count_); }

 private:
  bool non_null_only_;
  int64_t count_ = 0;
};

class SumAgg : public Aggregator {
 public:
  void Add(const Value& v) override {
    if (v.is_null()) return;
    seen_ = true;
    if (!v.is_int()) all_int_ = false;
    sum_ += v.AsDouble();
    int_sum_ += v.AsInt();
  }
  Value Finish() const override {
    if (!seen_) return Value::Null();
    return all_int_ ? Value::Int(int_sum_) : Value::Real(sum_);
  }

 private:
  bool seen_ = false;
  bool all_int_ = true;
  double sum_ = 0;
  int64_t int_sum_ = 0;
};

class AvgAgg : public Aggregator {
 public:
  void Add(const Value& v) override {
    if (v.is_null()) return;
    sum_ += v.AsDouble();
    ++count_;
  }
  Value Finish() const override {
    if (count_ == 0) return Value::Null();
    return Value::Real(sum_ / static_cast<double>(count_));
  }

 private:
  double sum_ = 0;
  int64_t count_ = 0;
};

class MinMaxAgg : public Aggregator {
 public:
  explicit MinMaxAgg(bool is_min) : is_min_(is_min) {}
  void Add(const Value& v) override {
    if (v.is_null()) return;
    if (!seen_) {
      best_ = v;
      seen_ = true;
      return;
    }
    const bool smaller = v < best_;
    if (smaller == is_min_ && !(v == best_)) best_ = v;
  }
  Value Finish() const override { return seen_ ? best_ : Value::Null(); }

 private:
  bool is_min_;
  bool seen_ = false;
  Value best_;
};

class FirstLastAgg : public Aggregator {
 public:
  explicit FirstLastAgg(bool is_first) : is_first_(is_first) {}
  void Add(const Value& v) override {
    if (v.is_null()) return;
    if (is_first_ && seen_) return;
    best_ = v;
    seen_ = true;
  }
  Value Finish() const override { return seen_ ? best_ : Value::Null(); }

 private:
  bool is_first_;
  bool seen_ = false;
  Value best_;
};

class MedianExactAgg : public Aggregator {
 public:
  void Add(const Value& v) override {
    if (!v.is_null()) med_.Add(v.AsDouble());
  }
  Value Finish() const override {
    if (med_.count() == 0) return Value::Null();
    return Value::Real(med_.Median());
  }

 private:
  sketch::ExactMedian med_;
};

class MedianP2Agg : public Aggregator {
 public:
  MedianP2Agg() : q_(0.5) {}
  void Add(const Value& v) override {
    if (!v.is_null()) q_.Add(v.AsDouble());
  }
  Value Finish() const override {
    if (q_.count() == 0) return Value::Null();
    return Value::Real(q_.Estimate());
  }

 private:
  sketch::P2Quantile q_;
};

// Welford's online algorithm for numerically stable variance.
class VarianceAgg : public Aggregator {
 public:
  explicit VarianceAgg(bool stddev) : stddev_(stddev) {}
  void Add(const Value& v) override {
    if (v.is_null()) return;
    const double x = v.AsDouble();
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }
  Value Finish() const override {
    if (count_ < 2) return Value::Null();
    const double var = m2_ / static_cast<double>(count_ - 1);
    return Value::Real(stddev_ ? std::sqrt(var) : var);
  }

 private:
  bool stddev_;
  int64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

class ApproxCountDistinctAgg : public Aggregator {
 public:
  explicit ApproxCountDistinctAgg(int precision) : hll_(precision) {}
  void Add(const Value& v) override {
    if (v.is_null()) return;
    if (v.is_string()) {
      hll_.AddString(v.AsString());
    } else if (v.is_int()) {
      hll_.AddInt(static_cast<uint64_t>(v.AsInt()));
    } else {
      const double d = v.AsDouble();
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      hll_.AddInt(bits);
    }
  }
  Value Finish() const override {
    return Value::Int(static_cast<int64_t>(std::llround(hll_.Estimate())));
  }

 private:
  sketch::HyperLogLog hll_;
};

}  // namespace

std::unique_ptr<Aggregator> MakeAggregator(AggKind kind, int hll_precision) {
  switch (kind) {
    case AggKind::kCount:
      return std::make_unique<CountAgg>(false);
    case AggKind::kCountNonNull:
      return std::make_unique<CountAgg>(true);
    case AggKind::kSum:
      return std::make_unique<SumAgg>();
    case AggKind::kAvg:
      return std::make_unique<AvgAgg>();
    case AggKind::kMin:
      return std::make_unique<MinMaxAgg>(true);
    case AggKind::kMax:
      return std::make_unique<MinMaxAgg>(false);
    case AggKind::kFirst:
      return std::make_unique<FirstLastAgg>(true);
    case AggKind::kLast:
      return std::make_unique<FirstLastAgg>(false);
    case AggKind::kMedianExact:
      return std::make_unique<MedianExactAgg>();
    case AggKind::kMedianP2:
      return std::make_unique<MedianP2Agg>();
    case AggKind::kApproxCountDistinct:
      return std::make_unique<ApproxCountDistinctAgg>(hll_precision);
    case AggKind::kStddev:
      return std::make_unique<VarianceAgg>(true);
    case AggKind::kVariance:
      return std::make_unique<VarianceAgg>(false);
  }
  return nullptr;
}

}  // namespace habit::db
