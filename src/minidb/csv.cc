#include "minidb/csv.h"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

namespace habit::db {

namespace {

std::vector<std::string> SplitLine(const std::string& line, char delim) {
  std::vector<std::string> out;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delim) {
      out.push_back(std::move(cur));
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  out.push_back(std::move(cur));
  return out;
}

bool LooksLikeInt(const std::string& s) {
  if (s.empty()) return false;
  int64_t v;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool LooksLikeDouble(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);  // lint: raw-parse(type sniffing; end-pointer checked below)
  return end == s.c_str() + s.size();
}

std::string EscapeField(const std::string& s, char delim) {
  if (s.find(delim) == std::string::npos &&
      s.find('"') == std::string::npos && s.find('\n') == std::string::npos) {
    return s;
  }
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

Result<Table> ParseCsv(const std::string& content, const CsvOptions& options) {
  std::istringstream is(content);
  std::string line;
  if (!std::getline(is, line)) {
    return Status::InvalidArgument("CSV content is empty (no header)");
  }
  const std::vector<std::string> header = SplitLine(line, options.delimiter);

  std::vector<std::vector<std::string>> rows;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitLine(line, options.delimiter);
    if (fields.size() != header.size()) {
      return Status::InvalidArgument("CSV row arity mismatch at data row " +
                                     std::to_string(rows.size() + 1));
    }
    rows.push_back(std::move(fields));
  }

  Schema schema;
  if (options.has_schema) {
    if (options.schema.num_fields() != header.size()) {
      return Status::InvalidArgument("provided schema arity != CSV header");
    }
    schema = options.schema;
  } else {
    // Infer: a column is int64 if all non-empty fields parse as ints,
    // double if all parse as numbers, string otherwise.
    for (size_t c = 0; c < header.size(); ++c) {
      bool all_int = true, all_num = true, any = false;
      for (const auto& row : rows) {
        const std::string& f = row[c];
        if (f.empty()) continue;
        any = true;
        if (!LooksLikeInt(f)) all_int = false;
        if (!LooksLikeDouble(f)) all_num = false;
      }
      DataType t = DataType::kString;
      if (any && all_int) t = DataType::kInt64;
      else if (any && all_num) t = DataType::kDouble;
      schema.AddField(header[c], t);
    }
  }

  Table table(schema);
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      Column& col = table.column(c);
      const std::string& f = row[c];
      if (f.empty()) {
        col.AppendNull();
      } else if (col.type() == DataType::kInt64) {
        // lint: raw-parse(column already type-sniffed by LooksLike*)
        col.AppendInt(std::strtoll(f.c_str(), nullptr, 10));
      } else if (col.type() == DataType::kDouble) {
        // lint: raw-parse(column already type-sniffed by LooksLike*)
        col.AppendDouble(std::strtod(f.c_str(), nullptr));
      } else {
        col.AppendString(f);
      }
    }
  }
  return table;
}

Result<Table> ReadCsv(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ParseCsv(ss.str(), options);
}

std::string ToCsvString(const Table& table, char delimiter) {
  std::ostringstream os;
  for (size_t c = 0; c < table.schema().num_fields(); ++c) {
    if (c) os << delimiter;
    os << EscapeField(table.schema().name(c), delimiter);
  }
  os << "\n";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c) os << delimiter;
      const Value v = table.column(c).GetValue(r);
      if (!v.is_null()) os << EscapeField(v.ToString(), delimiter);
    }
    os << "\n";
  }
  return os.str();
}

Status WriteCsv(const Table& table, const std::string& path, char delimiter) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << ToCsvString(table, delimiter);
  return out ? Status::OK() : Status::IoError("write failed for '" + path + "'");
}

}  // namespace habit::db
