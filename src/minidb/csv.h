// Minimal CSV import/export for minidb tables (header row required).
#pragma once

#include <string>

#include "core/status.h"
#include "minidb/table.h"

namespace habit::db {

/// \brief Options for ReadCsv.
struct CsvOptions {
  char delimiter = ',';
  /// If empty, types are inferred per column (int64 -> double -> string).
  Schema schema;
  bool has_schema = false;
};

/// Reads a CSV file into a Table. The first line must be a header.
Result<Table> ReadCsv(const std::string& path, const CsvOptions& options = {});

/// Parses CSV content from a string (same format as ReadCsv).
Result<Table> ParseCsv(const std::string& content,
                       const CsvOptions& options = {});

/// Writes a Table as CSV (with header).
Status WriteCsv(const Table& table, const std::string& path,
                char delimiter = ',');

/// Serializes a Table to a CSV string.
std::string ToCsvString(const Table& table, char delimiter = ',');

}  // namespace habit::db
