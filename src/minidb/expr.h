// Expression trees for minidb: column references, literals, arithmetic,
// comparisons, boolean logic, and a handful of scalar functions. Evaluation
// is row-at-a-time against a Table.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "minidb/table.h"

namespace habit::db {

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Operator kinds for binary expressions.
enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

/// \brief An evaluable scalar expression over table rows.
class Expr {
 public:
  virtual ~Expr() = default;

  /// Evaluates the expression against row `row` of `table`.
  virtual Result<Value> Eval(const Table& table, size_t row) const = 0;

  /// Resolves column references against the table schema; call once before
  /// evaluating rows. Default: recurse into children.
  virtual Status Bind(const Table& table) = 0;

  virtual std::string ToString() const = 0;
};

/// References a column by name.
ExprPtr Col(const std::string& name);

/// Integer / real / text / null literals.
ExprPtr Lit(int64_t v);
ExprPtr Lit(double v);
ExprPtr Lit(const char* v);
ExprPtr Lit(std::string v);
ExprPtr NullLit();

/// Binary operation node.
ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);

// Convenience builders.
inline ExprPtr Add(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kAdd, a, b); }
inline ExprPtr Sub(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kSub, a, b); }
inline ExprPtr Mul(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kMul, a, b); }
inline ExprPtr Div(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kDiv, a, b); }
inline ExprPtr Eq(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kEq, a, b); }
inline ExprPtr Ne(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kNe, a, b); }
inline ExprPtr Lt(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kLt, a, b); }
inline ExprPtr Le(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kLe, a, b); }
inline ExprPtr Gt(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kGt, a, b); }
inline ExprPtr Ge(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kGe, a, b); }
inline ExprPtr And(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kAnd, a, b); }
inline ExprPtr Or(ExprPtr a, ExprPtr b) { return Binary(BinaryOp::kOr, a, b); }

/// Logical negation.
ExprPtr Not(ExprPtr inner);

/// NULL test.
ExprPtr IsNull(ExprPtr inner);

/// User scalar function of one argument (e.g. hex-cell assignment).
ExprPtr Fn(const std::string& name, std::function<Value(const Value&)> fn,
           ExprPtr arg);

/// User scalar function of two arguments.
ExprPtr Fn2(const std::string& name,
            std::function<Value(const Value&, const Value&)> fn, ExprPtr a,
            ExprPtr b);

}  // namespace habit::db
