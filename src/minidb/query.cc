#include "minidb/query.h"

namespace habit::db {

template <typename F>
Query& Query::Apply(F&& f) {
  if (!status_.ok()) return *this;
  Result<Table> result = f(table_);
  if (!result.ok()) {
    status_ = result.status();
    return *this;
  }
  table_ = result.MoveValue();
  return *this;
}

Query& Query::Filter(const ExprPtr& predicate) {
  return Apply([&](const Table& t) { return db::Filter(t, predicate); });
}

Query& Query::Project(const std::vector<ProjectionSpec>& specs) {
  return Apply([&](const Table& t) { return db::Project(t, specs); });
}

Query& Query::SortBy(const std::vector<SortKey>& keys) {
  return Apply([&](const Table& t) { return db::SortBy(t, keys); });
}

Query& Query::WindowLag(const std::vector<std::string>& partition_by,
                        const std::string& order_by, const std::string& target,
                        const std::string& output_name) {
  return Apply([&](const Table& t) {
    return db::WindowLag(t, partition_by, order_by, target, output_name);
  });
}

Query& Query::GroupBy(const std::vector<std::string>& keys,
                      const std::vector<AggSpec>& aggs, int hll_precision) {
  return Apply([&](const Table& t) {
    return db::GroupBy(t, keys, aggs, hll_precision);
  });
}

Query& Query::Limit(size_t n) {
  return Apply([&](const Table& t) -> Result<Table> {
    return db::Limit(t, n);
  });
}

Result<Table> Query::Execute() {
  if (!status_.ok()) return status_;
  return std::move(table_);
}

}  // namespace habit::db
