#include "minidb/ops.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

namespace habit::db {

namespace {

// Serializes a tuple of key values into a byte string usable as a hash key.
// Values are type-tagged so Int(1) and Real(1.0) form distinct groups.
std::string EncodeKey(const Table& t, const std::vector<int>& key_idx,
                      size_t row) {
  std::string out;
  for (int idx : key_idx) {
    const Value v = t.column(static_cast<size_t>(idx)).GetValue(row);
    if (v.is_null()) {
      out.push_back('\x00');
    } else if (v.is_int()) {
      out.push_back('\x01');
      const int64_t x = v.AsInt();
      out.append(reinterpret_cast<const char*>(&x), sizeof(x));
    } else if (v.is_double()) {
      out.push_back('\x02');
      const double x = v.AsDouble();
      out.append(reinterpret_cast<const char*>(&x), sizeof(x));
    } else {
      out.push_back('\x03');
      out.append(v.AsString());
      out.push_back('\x00');
    }
  }
  return out;
}

Result<std::vector<int>> ResolveColumns(const Table& t,
                                        const std::vector<std::string>& names) {
  std::vector<int> idx;
  idx.reserve(names.size());
  for (const std::string& n : names) {
    const int i = t.schema().FieldIndex(n);
    if (i < 0) return Status::NotFound("no column named '" + n + "'");
    idx.push_back(i);
  }
  return idx;
}

Table SelectRows(const Table& input, const std::vector<size_t>& rows) {
  Table out(input.schema());
  for (size_t c = 0; c < input.num_columns(); ++c) {
    Column& dst = out.column(c);
    const Column& src = input.column(c);
    for (size_t r : rows) dst.AppendValue(src.GetValue(r));
  }
  return out;
}

}  // namespace

Result<Table> Filter(const Table& input, const ExprPtr& predicate) {
  HABIT_RETURN_NOT_OK(predicate->Bind(input));
  std::vector<size_t> keep;
  keep.reserve(input.num_rows());
  for (size_t r = 0; r < input.num_rows(); ++r) {
    HABIT_ASSIGN_OR_RETURN(Value v, predicate->Eval(input, r));
    if (v.AsBool()) keep.push_back(r);
  }
  return SelectRows(input, keep);
}

Result<Table> Project(const Table& input,
                      const std::vector<ProjectionSpec>& specs) {
  Schema schema;
  for (const ProjectionSpec& s : specs) {
    schema.AddField(s.name, s.type);
    HABIT_RETURN_NOT_OK(s.expr->Bind(input));
  }
  Table out(schema);
  for (size_t r = 0; r < input.num_rows(); ++r) {
    for (size_t c = 0; c < specs.size(); ++c) {
      HABIT_ASSIGN_OR_RETURN(Value v, specs[c].expr->Eval(input, r));
      out.column(c).AppendValue(v);
    }
  }
  return out;
}

Result<Table> SortBy(const Table& input, const std::vector<SortKey>& keys) {
  std::vector<std::string> names;
  for (const SortKey& k : keys) names.push_back(k.column);
  HABIT_ASSIGN_OR_RETURN(std::vector<int> idx, ResolveColumns(input, names));

  std::vector<size_t> order(input.num_rows());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < idx.size(); ++k) {
      const Value va = input.column(static_cast<size_t>(idx[k])).GetValue(a);
      const Value vb = input.column(static_cast<size_t>(idx[k])).GetValue(b);
      if (va < vb) return keys[k].ascending;
      if (vb < va) return !keys[k].ascending;
    }
    return false;
  });
  return SelectRows(input, order);
}

Result<Table> WindowLag(const Table& input,
                        const std::vector<std::string>& partition_by,
                        const std::string& order_by,
                        const std::string& target,
                        const std::string& output_name) {
  HABIT_ASSIGN_OR_RETURN(std::vector<int> part_idx,
                         ResolveColumns(input, partition_by));
  const int order_idx = input.schema().FieldIndex(order_by);
  if (order_idx < 0) {
    return Status::NotFound("no column named '" + order_by + "'");
  }
  const int target_idx = input.schema().FieldIndex(target);
  if (target_idx < 0) {
    return Status::NotFound("no column named '" + target + "'");
  }

  // Group row indices by partition, keeping input order, then sort each
  // partition by the order column (stable).
  std::unordered_map<std::string, std::vector<size_t>> partitions;
  std::vector<std::string> partition_order;
  for (size_t r = 0; r < input.num_rows(); ++r) {
    std::string key = EncodeKey(input, part_idx, r);
    auto it = partitions.find(key);
    if (it == partitions.end()) {
      partition_order.push_back(key);
      partitions.emplace(std::move(key), std::vector<size_t>{r});
    } else {
      it->second.push_back(r);
    }
  }

  // Output schema: input columns + the lag column (same type as target).
  Schema schema = input.schema();
  schema.AddField(output_name, input.column(target_idx).type());
  Table out(schema);

  const Column& order_col = input.column(static_cast<size_t>(order_idx));
  const Column& target_col = input.column(static_cast<size_t>(target_idx));
  for (const std::string& key : partition_order) {
    std::vector<size_t>& rows = partitions[key];
    std::stable_sort(rows.begin(), rows.end(), [&](size_t a, size_t b) {
      return order_col.GetValue(a) < order_col.GetValue(b);
    });
    for (size_t i = 0; i < rows.size(); ++i) {
      const size_t r = rows[i];
      for (size_t c = 0; c < input.num_columns(); ++c) {
        out.column(c).AppendValue(input.column(c).GetValue(r));
      }
      if (i == 0) {
        out.column(input.num_columns()).AppendNull();
      } else {
        out.column(input.num_columns())
            .AppendValue(target_col.GetValue(rows[i - 1]));
      }
    }
  }
  return out;
}

Result<Table> GroupBy(const Table& input, const std::vector<std::string>& keys,
                      const std::vector<AggSpec>& aggs, int hll_precision) {
  HABIT_ASSIGN_OR_RETURN(std::vector<int> key_idx,
                         ResolveColumns(input, keys));
  std::vector<int> agg_idx;
  agg_idx.reserve(aggs.size());
  for (const AggSpec& a : aggs) {
    if (a.kind == AggKind::kCount) {
      agg_idx.push_back(-1);
      continue;
    }
    const int i = input.schema().FieldIndex(a.input);
    if (i < 0) return Status::NotFound("no column named '" + a.input + "'");
    agg_idx.push_back(i);
  }

  struct GroupState {
    size_t exemplar_row;
    std::vector<std::unique_ptr<Aggregator>> aggregators;
  };
  std::unordered_map<std::string, GroupState> groups;
  std::vector<std::string> group_order;

  for (size_t r = 0; r < input.num_rows(); ++r) {
    std::string key = EncodeKey(input, key_idx, r);
    auto it = groups.find(key);
    if (it == groups.end()) {
      GroupState state;
      state.exemplar_row = r;
      for (const AggSpec& a : aggs) {
        state.aggregators.push_back(MakeAggregator(a.kind, hll_precision));
      }
      group_order.push_back(key);
      it = groups.emplace(std::move(key), std::move(state)).first;
    }
    for (size_t a = 0; a < aggs.size(); ++a) {
      const Value v =
          agg_idx[a] < 0
              ? Value::Int(1)
              : input.column(static_cast<size_t>(agg_idx[a])).GetValue(r);
      it->second.aggregators[a]->Add(v);
    }
  }

  Schema schema;
  for (size_t k = 0; k < keys.size(); ++k) {
    schema.AddField(keys[k],
                    input.column(static_cast<size_t>(key_idx[k])).type());
  }
  for (size_t a = 0; a < aggs.size(); ++a) {
    const DataType in_type =
        agg_idx[a] < 0 ? DataType::kInt64
                       : input.column(static_cast<size_t>(agg_idx[a])).type();
    schema.AddField(aggs[a].output, AggOutputType(aggs[a].kind, in_type));
  }

  Table out(schema);
  for (const std::string& key : group_order) {
    const GroupState& state = groups.at(key);
    size_t c = 0;
    for (int idx : key_idx) {
      out.column(c++).AppendValue(
          input.column(static_cast<size_t>(idx)).GetValue(state.exemplar_row));
    }
    for (const auto& agg : state.aggregators) {
      out.column(c++).AppendValue(agg->Finish());
    }
  }
  return out;
}

Table Limit(const Table& input, size_t n) {
  std::vector<size_t> rows;
  rows.reserve(std::min(n, input.num_rows()));
  for (size_t r = 0; r < std::min(n, input.num_rows()); ++r) rows.push_back(r);
  return SelectRows(input, rows);
}

Result<Table> Distinct(const Table& input,
                       const std::vector<std::string>& keys) {
  std::vector<std::string> names = keys;
  if (names.empty()) {
    for (size_t i = 0; i < input.schema().num_fields(); ++i) {
      names.push_back(input.schema().name(i));
    }
  }
  HABIT_ASSIGN_OR_RETURN(std::vector<int> idx, ResolveColumns(input, names));
  std::unordered_set<std::string> seen;
  std::vector<size_t> keep;
  for (size_t r = 0; r < input.num_rows(); ++r) {
    if (seen.insert(EncodeKey(input, idx, r)).second) keep.push_back(r);
  }
  return SelectRows(input, keep);
}

Result<Table> HashJoin(const Table& left, const std::string& left_key,
                       const Table& right, const std::string& right_key) {
  const int lk = left.schema().FieldIndex(left_key);
  if (lk < 0) return Status::NotFound("no column named '" + left_key + "'");
  const int rk = right.schema().FieldIndex(right_key);
  if (rk < 0) return Status::NotFound("no column named '" + right_key + "'");

  // Build side: right table, key -> row indices.
  std::unordered_map<std::string, std::vector<size_t>> build;
  const std::vector<int> rk_vec{rk};
  for (size_t r = 0; r < right.num_rows(); ++r) {
    if (!right.column(static_cast<size_t>(rk)).IsValid(r)) continue;
    build[EncodeKey(right, rk_vec, r)].push_back(r);
  }

  // Output schema: left columns + right columns minus the join key,
  // prefixing collisions.
  Schema schema = left.schema();
  std::vector<size_t> right_cols;
  std::vector<std::string> right_names;
  for (size_t c = 0; c < right.schema().num_fields(); ++c) {
    if (static_cast<int>(c) == rk) continue;
    std::string name = right.schema().name(c);
    if (schema.FieldIndex(name) >= 0) name = "right_" + name;
    right_cols.push_back(c);
    right_names.push_back(name);
    schema.AddField(name, right.schema().type(c));
  }

  Table out(schema);
  const std::vector<int> lk_vec{lk};
  for (size_t l = 0; l < left.num_rows(); ++l) {
    if (!left.column(static_cast<size_t>(lk)).IsValid(l)) continue;
    auto it = build.find(EncodeKey(left, lk_vec, l));
    if (it == build.end()) continue;
    for (const size_t r : it->second) {
      size_t c = 0;
      for (size_t lc = 0; lc < left.num_columns(); ++lc) {
        out.column(c++).AppendValue(left.column(lc).GetValue(l));
      }
      for (const size_t rc : right_cols) {
        out.column(c++).AppendValue(right.column(rc).GetValue(r));
      }
    }
  }
  return out;
}

Status Concat(Table* base, const Table& extra) {
  if (!(base->schema() == extra.schema())) {
    return Status::InvalidArgument("Concat: schemas differ");
  }
  for (size_t r = 0; r < extra.num_rows(); ++r) {
    HABIT_RETURN_NOT_OK(base->AppendRow(extra.GetRow(r)));
  }
  return Status::OK();
}

}  // namespace habit::db
