#include "minidb/expr.h"

#include <cmath>

namespace habit::db {

namespace {

class ColExpr : public Expr {
 public:
  explicit ColExpr(std::string name) : name_(std::move(name)) {}

  Status Bind(const Table& table) override {
    index_ = table.schema().FieldIndex(name_);
    if (index_ < 0) return Status::NotFound("no column named '" + name_ + "'");
    return Status::OK();
  }

  Result<Value> Eval(const Table& table, size_t row) const override {
    if (index_ < 0) return Status::Internal("unbound column '" + name_ + "'");
    return table.column(static_cast<size_t>(index_)).GetValue(row);
  }

  std::string ToString() const override { return name_; }

 private:
  std::string name_;
  int index_ = -1;
};

class LitExpr : public Expr {
 public:
  explicit LitExpr(Value v) : value_(std::move(v)) {}
  Status Bind(const Table&) override { return Status::OK(); }
  Result<Value> Eval(const Table&, size_t) const override { return value_; }
  std::string ToString() const override { return value_.ToString(); }

 private:
  Value value_;
};

const char* OpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Status Bind(const Table& table) override {
    HABIT_RETURN_NOT_OK(lhs_->Bind(table));
    return rhs_->Bind(table);
  }

  Result<Value> Eval(const Table& table, size_t row) const override {
    HABIT_ASSIGN_OR_RETURN(Value l, lhs_->Eval(table, row));
    HABIT_ASSIGN_OR_RETURN(Value r, rhs_->Eval(table, row));

    // SQL three-valued logic shortcuts for AND/OR with nulls collapse to
    // false here (sufficient for filter predicates).
    if (op_ == BinaryOp::kAnd) return Value::Bool(l.AsBool() && r.AsBool());
    if (op_ == BinaryOp::kOr) return Value::Bool(l.AsBool() || r.AsBool());

    if (l.is_null() || r.is_null()) {
      // Comparisons with NULL are false; arithmetic with NULL is NULL.
      switch (op_) {
        case BinaryOp::kEq:
          return Value::Bool(l.is_null() && r.is_null());
        case BinaryOp::kNe:
          return Value::Bool(l.is_null() != r.is_null());
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return Value::Bool(false);
        default:
          return Value::Null();
      }
    }

    if (l.is_string() || r.is_string()) {
      const std::string& ls = l.AsString();
      const std::string& rs = r.AsString();
      switch (op_) {
        case BinaryOp::kEq: return Value::Bool(ls == rs);
        case BinaryOp::kNe: return Value::Bool(ls != rs);
        case BinaryOp::kLt: return Value::Bool(ls < rs);
        case BinaryOp::kLe: return Value::Bool(ls <= rs);
        case BinaryOp::kGt: return Value::Bool(ls > rs);
        case BinaryOp::kGe: return Value::Bool(ls >= rs);
        case BinaryOp::kAdd: return Value::Text(ls + rs);
        default:
          return Status::InvalidArgument("string operands for numeric op");
      }
    }

    const bool both_int = l.is_int() && r.is_int();
    if (both_int) {
      // Integer comparisons must not round-trip through double: int64
      // payloads (e.g. packed hex cell ids) exceed double's 53-bit mantissa.
      const int64_t li = l.AsInt(), ri = r.AsInt();
      switch (op_) {
        case BinaryOp::kEq: return Value::Bool(li == ri);
        case BinaryOp::kNe: return Value::Bool(li != ri);
        case BinaryOp::kLt: return Value::Bool(li < ri);
        case BinaryOp::kLe: return Value::Bool(li <= ri);
        case BinaryOp::kGt: return Value::Bool(li > ri);
        case BinaryOp::kGe: return Value::Bool(li >= ri);
        default:
          break;
      }
    }
    switch (op_) {
      case BinaryOp::kAdd:
        return both_int ? Value::Int(l.AsInt() + r.AsInt())
                        : Value::Real(l.AsDouble() + r.AsDouble());
      case BinaryOp::kSub:
        return both_int ? Value::Int(l.AsInt() - r.AsInt())
                        : Value::Real(l.AsDouble() - r.AsDouble());
      case BinaryOp::kMul:
        return both_int ? Value::Int(l.AsInt() * r.AsInt())
                        : Value::Real(l.AsDouble() * r.AsDouble());
      case BinaryOp::kDiv:
        if (r.AsDouble() == 0.0) return Value::Null();
        return Value::Real(l.AsDouble() / r.AsDouble());
      case BinaryOp::kMod:
        if (!both_int || r.AsInt() == 0) return Value::Null();
        return Value::Int(l.AsInt() % r.AsInt());
      case BinaryOp::kEq: return Value::Bool(l.AsDouble() == r.AsDouble());
      case BinaryOp::kNe: return Value::Bool(l.AsDouble() != r.AsDouble());
      case BinaryOp::kLt: return Value::Bool(l.AsDouble() < r.AsDouble());
      case BinaryOp::kLe: return Value::Bool(l.AsDouble() <= r.AsDouble());
      case BinaryOp::kGt: return Value::Bool(l.AsDouble() > r.AsDouble());
      case BinaryOp::kGe: return Value::Bool(l.AsDouble() >= r.AsDouble());
      default:
        return Status::Internal("unhandled binary op");
    }
  }

  std::string ToString() const override {
    return "(" + lhs_->ToString() + " " + OpName(op_) + " " +
           rhs_->ToString() + ")";
  }

 private:
  BinaryOp op_;
  ExprPtr lhs_, rhs_;
};

class NotExpr : public Expr {
 public:
  explicit NotExpr(ExprPtr inner) : inner_(std::move(inner)) {}
  Status Bind(const Table& table) override { return inner_->Bind(table); }
  Result<Value> Eval(const Table& table, size_t row) const override {
    HABIT_ASSIGN_OR_RETURN(Value v, inner_->Eval(table, row));
    return Value::Bool(!v.AsBool());
  }
  std::string ToString() const override {
    return "NOT " + inner_->ToString();
  }

 private:
  ExprPtr inner_;
};

class IsNullExpr : public Expr {
 public:
  explicit IsNullExpr(ExprPtr inner) : inner_(std::move(inner)) {}
  Status Bind(const Table& table) override { return inner_->Bind(table); }
  Result<Value> Eval(const Table& table, size_t row) const override {
    HABIT_ASSIGN_OR_RETURN(Value v, inner_->Eval(table, row));
    return Value::Bool(v.is_null());
  }
  std::string ToString() const override {
    return inner_->ToString() + " IS NULL";
  }

 private:
  ExprPtr inner_;
};

class FnExpr : public Expr {
 public:
  FnExpr(std::string name, std::function<Value(const Value&)> fn, ExprPtr arg)
      : name_(std::move(name)), fn_(std::move(fn)), arg_(std::move(arg)) {}
  Status Bind(const Table& table) override { return arg_->Bind(table); }
  Result<Value> Eval(const Table& table, size_t row) const override {
    HABIT_ASSIGN_OR_RETURN(Value v, arg_->Eval(table, row));
    return fn_(v);
  }
  std::string ToString() const override {
    return name_ + "(" + arg_->ToString() + ")";
  }

 private:
  std::string name_;
  std::function<Value(const Value&)> fn_;
  ExprPtr arg_;
};

class Fn2Expr : public Expr {
 public:
  Fn2Expr(std::string name,
          std::function<Value(const Value&, const Value&)> fn, ExprPtr a,
          ExprPtr b)
      : name_(std::move(name)),
        fn_(std::move(fn)),
        a_(std::move(a)),
        b_(std::move(b)) {}
  Status Bind(const Table& table) override {
    HABIT_RETURN_NOT_OK(a_->Bind(table));
    return b_->Bind(table);
  }
  Result<Value> Eval(const Table& table, size_t row) const override {
    HABIT_ASSIGN_OR_RETURN(Value va, a_->Eval(table, row));
    HABIT_ASSIGN_OR_RETURN(Value vb, b_->Eval(table, row));
    return fn_(va, vb);
  }
  std::string ToString() const override {
    return name_ + "(" + a_->ToString() + ", " + b_->ToString() + ")";
  }

 private:
  std::string name_;
  std::function<Value(const Value&, const Value&)> fn_;
  ExprPtr a_, b_;
};

}  // namespace

ExprPtr Col(const std::string& name) { return std::make_shared<ColExpr>(name); }
ExprPtr Lit(int64_t v) { return std::make_shared<LitExpr>(Value::Int(v)); }
ExprPtr Lit(double v) { return std::make_shared<LitExpr>(Value::Real(v)); }
ExprPtr Lit(const char* v) {
  return std::make_shared<LitExpr>(Value::Text(v));
}
ExprPtr Lit(std::string v) {
  return std::make_shared<LitExpr>(Value::Text(std::move(v)));
}
ExprPtr NullLit() { return std::make_shared<LitExpr>(Value::Null()); }

ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<BinaryExpr>(op, std::move(lhs), std::move(rhs));
}

ExprPtr Not(ExprPtr inner) { return std::make_shared<NotExpr>(std::move(inner)); }

ExprPtr IsNull(ExprPtr inner) {
  return std::make_shared<IsNullExpr>(std::move(inner));
}

ExprPtr Fn(const std::string& name, std::function<Value(const Value&)> fn,
           ExprPtr arg) {
  return std::make_shared<FnExpr>(name, std::move(fn), std::move(arg));
}

ExprPtr Fn2(const std::string& name,
            std::function<Value(const Value&, const Value&)> fn, ExprPtr a,
            ExprPtr b) {
  return std::make_shared<Fn2Expr>(name, std::move(fn), std::move(a),
                                   std::move(b));
}

}  // namespace habit::db
