#include "minidb/value.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace habit::db {

const char* DataTypeToString(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

int64_t Value::AsInt() const {
  if (is_int()) return std::get<int64_t>(var_);
  if (is_double()) return static_cast<int64_t>(std::get<double>(var_));
  return 0;
}

double Value::AsDouble() const {
  if (is_double()) return std::get<double>(var_);
  if (is_int()) return static_cast<double>(std::get<int64_t>(var_));
  return std::numeric_limits<double>::quiet_NaN();
}

const std::string& Value::AsString() const {
  static const std::string empty;
  if (is_string()) return std::get<std::string>(var_);
  return empty;
}

bool Value::AsBool() const {
  if (is_int()) return std::get<int64_t>(var_) != 0;
  if (is_double()) return std::get<double>(var_) != 0.0;
  return false;
}

bool Value::operator<(const Value& o) const {
  // Nulls sort first.
  if (is_null() != o.is_null()) return is_null();
  if (is_null()) return false;
  const bool lhs_num = is_int() || is_double();
  const bool rhs_num = o.is_int() || o.is_double();
  if (lhs_num != rhs_num) return lhs_num;  // numbers before strings
  if (lhs_num) {
    // Keep int64 comparisons exact (doubles drop bits past 2^53).
    if (is_int() && o.is_int()) return AsInt() < o.AsInt();
    return AsDouble() < o.AsDouble();
  }
  return AsString() < o.AsString();
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(std::get<int64_t>(var_));
  if (is_double()) {
    // Shortest representation that round-trips through strtod.
    char buf[40];
    const double d = std::get<double>(var_);
    for (int precision : {15, 16, 17}) {
      std::snprintf(buf, sizeof(buf), "%.*g", precision, d);
      // lint: raw-parse(round-trip probe of our own snprintf output)
      if (std::strtod(buf, nullptr) == d) break;
    }
    return buf;
  }
  return std::get<std::string>(var_);
}

}  // namespace habit::db
