// Columnar table storage: schema, typed columns with validity bitmaps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "minidb/value.h"

namespace habit::db {

/// \brief A single typed column with a validity bitmap.
class Column {
 public:
  explicit Column(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const { return valid_.size(); }

  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);
  void AppendNull();
  /// Appends any Value; numeric widening/narrowing follows the column type.
  void AppendValue(const Value& v);

  bool IsValid(size_t row) const { return valid_[row]; }
  int64_t GetInt(size_t row) const { return ints_[row]; }
  double GetDouble(size_t row) const;
  const std::string& GetString(size_t row) const { return strings_[row]; }
  Value GetValue(size_t row) const;

  /// Approximate heap footprint in bytes (used for storage accounting).
  size_t SizeBytes() const;

 private:
  DataType type_;
  std::vector<bool> valid_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
};

/// \brief Ordered (name, type) column descriptors.
class Schema {
 public:
  Schema() = default;
  Schema(std::initializer_list<std::pair<std::string, DataType>> fields);

  void AddField(const std::string& name, DataType type);
  size_t num_fields() const { return names_.size(); }
  const std::string& name(size_t i) const { return names_[i]; }
  DataType type(size_t i) const { return types_[i]; }

  /// Index of the named field, or -1.
  int FieldIndex(const std::string& name) const;

  bool operator==(const Schema& o) const {
    return names_ == o.names_ && types_ == o.types_;
  }

 private:
  std::vector<std::string> names_;
  std::vector<DataType> types_;
};

/// \brief An in-memory columnar table.
class Table {
 public:
  Table() = default;
  explicit Table(const Schema& schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }
  size_t num_columns() const { return columns_.size(); }

  Column& column(size_t i) { return columns_[i]; }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Column by name; error if absent.
  Result<const Column*> GetColumn(const std::string& name) const;
  Result<Column*> GetMutableColumn(const std::string& name);

  /// Appends a full row. Must match schema arity; values are coerced to the
  /// column types where possible.
  Status AppendRow(const std::vector<Value>& row);

  /// Row as a vector of Values (for tests and debugging).
  std::vector<Value> GetRow(size_t row) const;

  /// Approximate heap footprint in bytes.
  size_t SizeBytes() const;

  /// Pretty-prints up to `max_rows` rows (debugging aid).
  std::string ToString(size_t max_rows = 10) const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
};

}  // namespace habit::db
