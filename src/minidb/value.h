// Scalar value model for minidb, the in-memory columnar engine that stands
// in for DuckDB in this reproduction (see DESIGN.md).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace habit::db {

/// Column data types supported by minidb.
enum class DataType {
  kInt64,
  kDouble,
  kString,
};

const char* DataTypeToString(DataType t);

/// \brief A nullable scalar: null, int64, double, or string.
class Value {
 public:
  Value() : var_(std::monostate{}) {}
  explicit Value(int64_t v) : var_(v) {}
  explicit Value(double v) : var_(v) {}
  explicit Value(std::string v) : var_(std::move(v)) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Real(double v) { return Value(v); }
  static Value Text(std::string v) { return Value(std::move(v)); }
  static Value Bool(bool b) { return Value(static_cast<int64_t>(b)); }

  bool is_null() const { return std::holds_alternative<std::monostate>(var_); }
  bool is_int() const { return std::holds_alternative<int64_t>(var_); }
  bool is_double() const { return std::holds_alternative<double>(var_); }
  bool is_string() const { return std::holds_alternative<std::string>(var_); }

  int64_t AsInt() const;
  double AsDouble() const;  ///< ints are widened; strings/null -> NaN
  const std::string& AsString() const;
  /// SQL-style truthiness: non-zero numeric; null and strings are false.
  bool AsBool() const;

  /// Equality in SQL semantics except that null == null here (used for
  /// group-by keys and tests).
  bool operator==(const Value& o) const { return var_ == o.var_; }

  /// Ordering for sort operators: null < int/double (numeric order) < string.
  bool operator<(const Value& o) const;

  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> var_;
};

}  // namespace habit::db
