// Relational operators over minidb tables: filter, project, sort, window
// LAG, hash group-by, limit, concat. Together they execute the paper's
// Section 3.2 CTE (lag per trip, two-level aggregation).
#pragma once

#include <string>
#include <vector>

#include "core/status.h"
#include "minidb/aggregate.h"
#include "minidb/expr.h"
#include "minidb/table.h"

namespace habit::db {

/// Rows of `input` where `predicate` evaluates truthy.
Result<Table> Filter(const Table& input, const ExprPtr& predicate);

/// One output column per (name, expr) pair.
struct ProjectionSpec {
  std::string name;
  ExprPtr expr;
  DataType type = DataType::kDouble;  ///< output column type
};
Result<Table> Project(const Table& input,
                      const std::vector<ProjectionSpec>& specs);

/// Sort key: column name + direction.
struct SortKey {
  std::string column;
  bool ascending = true;
};
Result<Table> SortBy(const Table& input, const std::vector<SortKey>& keys);

/// \brief Appends a LAG(target, 1) column computed over partitions.
///
/// Equivalent to SQL:
///   LAG(target) OVER (PARTITION BY partition_by... ORDER BY order_by)
/// The first row of each partition gets NULL. Input order within equal
/// order_by values is preserved (stable).
Result<Table> WindowLag(const Table& input,
                        const std::vector<std::string>& partition_by,
                        const std::string& order_by,
                        const std::string& target,
                        const std::string& output_name);

/// Aggregate specification for GroupBy.
struct AggSpec {
  AggKind kind;
  std::string input;   ///< input column (ignored for kCount)
  std::string output;  ///< output column name
};

/// \brief Hash group-by. Output columns: the key columns (in order) followed
/// by one column per AggSpec. Group order follows first appearance.
Result<Table> GroupBy(const Table& input, const std::vector<std::string>& keys,
                      const std::vector<AggSpec>& aggs,
                      int hll_precision = 12);

/// First `n` rows.
Table Limit(const Table& input, size_t n);

/// Distinct rows over the named key columns (first occurrence kept, input
/// order preserved). With empty `keys`, deduplicates over all columns.
Result<Table> Distinct(const Table& input,
                       const std::vector<std::string>& keys = {});

/// \brief Inner hash join on equality of `left_key` / `right_key`.
///
/// Output columns: all left columns, then all right columns except the
/// join key; right columns whose names collide get a "right_" prefix.
/// NULL keys never match (SQL semantics).
Result<Table> HashJoin(const Table& left, const std::string& left_key,
                       const Table& right, const std::string& right_key);

/// Appends rows of `extra` to `base` (schemas must match).
Status Concat(Table* base, const Table& extra);

}  // namespace habit::db
