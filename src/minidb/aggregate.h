// Aggregate functions for minidb's hash group-by. Covers the aggregates the
// paper's DuckDB CTE uses: count(*), approx_count_distinct (HyperLogLog),
// median (exact, plus a P^2 approximate variant), and the usual sum/avg/
// min/max/first/last.
#pragma once

#include <memory>
#include <string>

#include "minidb/value.h"
#include "sketch/hyperloglog.h"
#include "sketch/quantile.h"

namespace habit::db {

/// Kinds of supported aggregates.
enum class AggKind {
  kCount,               ///< count(*) — counts rows, ignores the input expr
  kCountNonNull,        ///< count(x)
  kSum,
  kAvg,
  kMin,
  kMax,
  kFirst,
  kLast,
  kMedianExact,         ///< DuckDB `median`
  kMedianP2,            ///< constant-memory approximate median
  kApproxCountDistinct, ///< DuckDB `approx_count_distinct` (HyperLogLog)
  kStddev,              ///< sample standard deviation (Welford)
  kVariance,            ///< sample variance (Welford)
};

const char* AggKindToString(AggKind kind);

/// Result type produced by an aggregate of the given kind over inputs of the
/// given type.
DataType AggOutputType(AggKind kind, DataType input);

/// \brief Incremental aggregate state: feed values, then finalize.
class Aggregator {
 public:
  virtual ~Aggregator() = default;
  virtual void Add(const Value& v) = 0;
  virtual Value Finish() const = 0;
};

/// Creates a fresh aggregator for the kind. `hll_precision` applies to
/// kApproxCountDistinct only.
std::unique_ptr<Aggregator> MakeAggregator(AggKind kind,
                                           int hll_precision = 12);

}  // namespace habit::db
