#include "minidb/table.h"

#include <sstream>

namespace habit::db {

void Column::AppendInt(int64_t v) {
  switch (type_) {
    case DataType::kInt64:
      valid_.push_back(true);
      ints_.push_back(v);
      break;
    case DataType::kDouble:
      AppendDouble(static_cast<double>(v));
      break;
    case DataType::kString:
      AppendString(std::to_string(v));
      break;
  }
}

void Column::AppendDouble(double v) {
  switch (type_) {
    case DataType::kInt64:
      valid_.push_back(true);
      ints_.push_back(static_cast<int64_t>(v));
      break;
    case DataType::kDouble:
      valid_.push_back(true);
      doubles_.push_back(v);
      break;
    case DataType::kString:
      AppendString(std::to_string(v));
      break;
  }
}

void Column::AppendString(std::string v) {
  if (type_ != DataType::kString) {
    // Appending text to a numeric column yields NULL (no implicit parsing).
    AppendNull();
    return;
  }
  valid_.push_back(true);
  strings_.push_back(std::move(v));
}

void Column::AppendNull() {
  valid_.push_back(false);
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(0);
      break;
    case DataType::kDouble:
      doubles_.push_back(0.0);
      break;
    case DataType::kString:
      strings_.emplace_back();
      break;
  }
}

void Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kInt64:
      AppendInt(v.AsInt());
      break;
    case DataType::kDouble:
      AppendDouble(v.AsDouble());
      break;
    case DataType::kString:
      AppendString(v.is_string() ? v.AsString() : v.ToString());
      break;
  }
}

double Column::GetDouble(size_t row) const {
  if (type_ == DataType::kInt64) return static_cast<double>(ints_[row]);
  return doubles_[row];
}

Value Column::GetValue(size_t row) const {
  if (!valid_[row]) return Value::Null();
  switch (type_) {
    case DataType::kInt64:
      return Value::Int(ints_[row]);
    case DataType::kDouble:
      return Value::Real(doubles_[row]);
    case DataType::kString:
      return Value::Text(strings_[row]);
  }
  return Value::Null();
}

size_t Column::SizeBytes() const {
  size_t bytes = valid_.size() / 8 + ints_.size() * sizeof(int64_t) +
                 doubles_.size() * sizeof(double);
  for (const std::string& s : strings_) bytes += s.capacity() + sizeof(s);
  return bytes;
}

Schema::Schema(std::initializer_list<std::pair<std::string, DataType>> fields) {
  for (const auto& [name, type] : fields) AddField(name, type);
}

void Schema::AddField(const std::string& name, DataType type) {
  names_.push_back(name);
  types_.push_back(type);
}

int Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Table::Table(const Schema& schema) : schema_(schema) {
  columns_.reserve(schema.num_fields());
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    columns_.emplace_back(schema.type(i));
  }
}

Result<const Column*> Table::GetColumn(const std::string& name) const {
  const int idx = schema_.FieldIndex(name);
  if (idx < 0) return Status::NotFound("no column named '" + name + "'");
  return &columns_[idx];
}

Result<Column*> Table::GetMutableColumn(const std::string& name) {
  const int idx = schema_.FieldIndex(name);
  if (idx < 0) return Status::NotFound("no column named '" + name + "'");
  return &columns_[idx];
}

Status Table::AppendRow(const std::vector<Value>& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  for (size_t i = 0; i < row.size(); ++i) columns_[i].AppendValue(row[i]);
  return Status::OK();
}

std::vector<Value> Table::GetRow(size_t row) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const Column& c : columns_) out.push_back(c.GetValue(row));
  return out;
}

size_t Table::SizeBytes() const {
  size_t bytes = 0;
  for (const Column& c : columns_) bytes += c.SizeBytes();
  return bytes;
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  for (size_t i = 0; i < schema_.num_fields(); ++i) {
    if (i) os << " | ";
    os << schema_.name(i);
  }
  os << "\n";
  const size_t limit = std::min(max_rows, num_rows());
  for (size_t r = 0; r < limit; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c) os << " | ";
      os << columns_[c].GetValue(r).ToString();
    }
    os << "\n";
  }
  if (num_rows() > limit) {
    os << "... (" << num_rows() - limit << " more rows)\n";
  }
  return os.str();
}

}  // namespace habit::db
