// A minimal blocking line-protocol client over loopback TCP: one frame
// out (newline appended), one response line back. The ONE client-side
// framing implementation — the server tests and bench_serve both drive
// habit_serve through this, so a framing fix cannot drift between them.
// For tooling and tests, not production clients (no timeouts, no TLS —
// per the README, external traffic terminates at a fronting router).
#pragma once

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <string>

namespace habit::server {

class LineClient {
 public:
  explicit LineClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ = fd_ >= 0 &&
                 ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  bool connected() const { return connected_; }

  /// Sends one newline-terminated frame.
  bool Send(const std::string& line) { return SendRaw(line + "\n"); }

  /// Sends raw bytes (no framing added) — for malformed-input tests.
  bool SendRaw(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t sent = ::send(fd_, bytes.data() + off,
                                  bytes.size() - off, MSG_NOSIGNAL);
      if (sent < 0 && errno == EINTR) continue;
      if (sent <= 0) return false;
      off += static_cast<size_t>(sent);
    }
    return true;
  }

  /// Half-closes the write side (the "one request, no trailing newline,
  /// then shutdown" client pattern).
  void HalfClose() { ::shutdown(fd_, SHUT_WR); }

  /// Reads one newline-terminated response (without the newline).
  bool ReadLine(std::string* line) {
    while (true) {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        *line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[64 * 1024];
      const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (got < 0 && errno == EINTR) continue;
      if (got <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(got));
    }
  }

  /// One round trip: Send then ReadLine.
  bool Call(const std::string& line, std::string* response) {
    return Send(line) && ReadLine(response);
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

}  // namespace habit::server
