// A minimal blocking line-protocol client over loopback TCP: one frame
// out (newline appended), one response line back. The ONE client-side
// framing implementation — the server tests, bench_serve, and the shard
// router all drive habit_serve through this, so a framing fix cannot
// drift between them.
//
// Timeouts: a router fanning one batch out to N backends cannot afford a
// hung backend blocking a caller forever, so the client takes optional
// connect / IO deadlines (ClientOptions). Zero (the default for the bare
// port constructor) preserves fully blocking behavior for tests that want
// it. Every failure surfaces through last_error() so callers can tell a
// refused connection from a read timeout from a peer close — the router's
// retry-then-degrade policy branches on exactly that.
//
// Loopback only, no TLS — per the README, external traffic terminates at
// a fronting router (which is itself a LineClient caller).
#pragma once

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

namespace habit::server {

/// \brief Connection and IO deadlines for a LineClient. Zero = no limit
/// (fully blocking, the pre-router behavior).
struct ClientOptions {
  int connect_timeout_ms = 0;  ///< limit on the TCP connect
  int io_timeout_ms = 0;       ///< per-recv/send limit (SO_RCVTIMEO/SNDTIMEO)
};

class LineClient {
 public:
  explicit LineClient(uint16_t port) : LineClient(port, ClientOptions{}) {}

  LineClient(uint16_t port, const ClientOptions& options) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
      error_ = std::string("socket: ") + std::strerror(errno);
      return;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ = options.connect_timeout_ms > 0
                     ? ConnectWithTimeout(addr, options.connect_timeout_ms)
                     : ConnectBlocking(addr);
    if (connected_ && options.io_timeout_ms > 0) {
      timeval tv{};
      tv.tv_sec = options.io_timeout_ms / 1000;
      tv.tv_usec = (options.io_timeout_ms % 1000) * 1000;
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  bool connected() const { return connected_; }

  /// Human-readable cause of the most recent failure ("" when none):
  /// "connect: ...", "connect timed out", "send: ...", "read timed out",
  /// "connection closed by peer".
  const std::string& last_error() const { return error_; }

  /// Sends one newline-terminated frame.
  bool Send(const std::string& line) { return SendRaw(line + "\n"); }

  /// Sends raw bytes (no framing added) — for malformed-input tests.
  bool SendRaw(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t sent = ::send(fd_, bytes.data() + off,
                                  bytes.size() - off, MSG_NOSIGNAL);
      if (sent < 0 && errno == EINTR) continue;
      if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        error_ = "send timed out";
        return false;
      }
      if (sent <= 0) {
        error_ = std::string("send: ") + std::strerror(errno);
        return false;
      }
      off += static_cast<size_t>(sent);
    }
    return true;
  }

  /// Half-closes the write side (the "one request, no trailing newline,
  /// then shutdown" client pattern).
  void HalfClose() { ::shutdown(fd_, SHUT_WR); }

  /// Reads one newline-terminated response (without the newline). False on
  /// peer close or IO timeout — last_error() tells them apart.
  bool ReadLine(std::string* line) {
    while (true) {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        *line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[64 * 1024];
      const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (got < 0 && errno == EINTR) continue;
      if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        error_ = "read timed out";
        return false;
      }
      if (got < 0) {
        error_ = std::string("recv: ") + std::strerror(errno);
        return false;
      }
      if (got == 0) {
        error_ = "connection closed by peer";
        return false;
      }
      buffer_.append(chunk, static_cast<size_t>(got));
    }
  }

  /// One round trip: Send then ReadLine.
  bool Call(const std::string& line, std::string* response) {
    return Send(line) && ReadLine(response);
  }

 private:
  bool ConnectBlocking(const sockaddr_in& addr) {
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return true;
    }
    error_ = std::string("connect: ") + std::strerror(errno);
    return false;
  }

  // Non-blocking connect + poll deadline, then back to blocking mode so
  // the IO path stays simple (per-op deadlines come from SO_RCVTIMEO).
  bool ConnectWithTimeout(const sockaddr_in& addr, int timeout_ms) {
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      error_ = std::string("connect: ") + std::strerror(errno);
      return false;
    }
    if (rc != 0) {
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLOUT;
      do {
        rc = ::poll(&pfd, 1, timeout_ms);
      } while (rc < 0 && errno == EINTR);
      if (rc == 0) {
        error_ = "connect timed out";
        return false;
      }
      if (rc < 0) {
        error_ = std::string("poll: ") + std::strerror(errno);
        return false;
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &so_error, &len);
      if (so_error != 0) {
        error_ = std::string("connect: ") + std::strerror(so_error);
        return false;
      }
    }
    ::fcntl(fd_, F_SETFL, flags);
    return true;
  }

  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
  std::string error_;
};

}  // namespace habit::server
