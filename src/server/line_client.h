// A minimal blocking line-protocol client over loopback TCP: one frame
// out (newline appended), one response line back. The ONE client-side
// framing implementation — the server tests, bench_serve, and the shard
// router all drive habit_serve through this, so a framing fix cannot
// drift between them.
//
// Timeouts: a router fanning one batch out to N backends cannot afford a
// hung backend blocking a caller forever, so the client takes optional
// connect / IO deadlines (ClientOptions). Zero (the default for the bare
// port constructor) preserves fully blocking behavior for tests that want
// it. Every failure surfaces through last_error() so callers can tell a
// refused connection from a read timeout from a peer close — the router's
// retry-then-degrade policy branches on exactly that.
//
// Binary mode (ClientOptions::binary): the client probes the server with
// one binary ping frame plus a trailing newline. A binary-capable server
// answers with a pong *frame* (first byte 'H'); a JSON-only server parses
// the probe as one garbage line and answers a JSON error (first byte
// '{'), and the client silently falls back to JSON on the same
// connection. After a successful handshake, Call() parses the request
// line once client-side, ships it as a structured frame (no JSON on the
// wire), and re-renders the response frame as the canonical JSON line —
// byte-identical to what the JSON path returns, so callers never know
// which protocol ran. The IO deadlines apply to every partial frame read.
//
// Loopback only, no TLS — per the README, external traffic terminates at
// a fronting router (which is itself a LineClient caller).
#pragma once

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "server/frame.h"
#include "server/protocol.h"

namespace habit::server {

/// \brief Connection and IO deadlines for a LineClient. Zero = no limit
/// (fully blocking, the pre-router behavior).
struct ClientOptions {
  int connect_timeout_ms = 0;  ///< limit on the TCP connect
  int io_timeout_ms = 0;       ///< per-recv/send limit (SO_RCVTIMEO/SNDTIMEO)
  /// Negotiate the binary frame protocol at connect; falls back to JSON
  /// against a server (or router) that only speaks lines.
  bool binary = false;
};

class LineClient {
 public:
  explicit LineClient(uint16_t port) : LineClient(port, ClientOptions{}) {}

  LineClient(uint16_t port, const ClientOptions& options) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
      error_ = std::string("socket: ") + std::strerror(errno);
      return;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ = options.connect_timeout_ms > 0
                     ? ConnectWithTimeout(addr, options.connect_timeout_ms)
                     : ConnectBlocking(addr);
    if (connected_ && options.io_timeout_ms > 0) {
      timeval tv{};
      tv.tv_sec = options.io_timeout_ms / 1000;
      tv.tv_usec = (options.io_timeout_ms % 1000) * 1000;
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    if (connected_ && options.binary && !Negotiate()) connected_ = false;
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  bool connected() const { return connected_; }

  /// True when the binary handshake succeeded (Call() frames instead of
  /// sending JSON). False on plain connections and after JSON fallback.
  bool binary() const { return binary_; }

  /// Human-readable cause of the most recent failure ("" when none):
  /// "connect: ...", "connect timed out", "send: ...", "read timed out",
  /// "connection closed by peer".
  const std::string& last_error() const { return error_; }

  /// Sends one newline-terminated frame.
  bool Send(const std::string& line) { return SendRaw(line + "\n"); }

  /// Sends raw bytes (no framing added) — for malformed-input tests.
  bool SendRaw(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t sent = ::send(fd_, bytes.data() + off,
                                  bytes.size() - off, MSG_NOSIGNAL);
      if (sent < 0 && errno == EINTR) continue;
      if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        error_ = "send timed out";
        return false;
      }
      if (sent <= 0) {
        error_ = std::string("send: ") + std::strerror(errno);
        return false;
      }
      off += static_cast<size_t>(sent);
    }
    return true;
  }

  /// Half-closes the write side (the "one request, no trailing newline,
  /// then shutdown" client pattern).
  void HalfClose() { ::shutdown(fd_, SHUT_WR); }

  /// Reads one newline-terminated response (without the newline). False on
  /// peer close or IO timeout — last_error() tells them apart.
  bool ReadLine(std::string* line) {
    while (true) {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        *line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[64 * 1024];
      const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (got < 0 && errno == EINTR) continue;
      if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        error_ = "read timed out";
        return false;
      }
      if (got < 0) {
        error_ = std::string("recv: ") + std::strerror(errno);
        return false;
      }
      if (got == 0) {
        error_ = "connection closed by peer";
        return false;
      }
      buffer_.append(chunk, static_cast<size_t>(got));
    }
  }

  /// One round trip. On a binary connection the line is parsed once
  /// client-side and travels as a structured frame; the response comes
  /// back as the canonical JSON line either way.
  bool Call(const std::string& line, std::string* response) {
    if (binary_) return CallViaBinary(line, response);
    return Send(line) && ReadLine(response);
  }

  /// Reads one complete frame's payload (header stripped). False on
  /// close/timeout/bad magic — partial reads honor the IO deadline.
  bool ReadFrame(std::string* payload) {
    if (!FillBuffer(frame::kHeaderBytes)) return false;
    uint32_t magic;
    uint32_t length;
    std::memcpy(&magic, buffer_.data(), sizeof(magic));
    std::memcpy(&length, buffer_.data() + sizeof(magic), sizeof(length));
    if (magic != frame::kMagic) {
      error_ = "bad frame magic from server";
      return false;
    }
    if (length > (64u << 20)) {  // sanity: never buffer a corrupt length
      error_ = "oversized frame from server";
      return false;
    }
    if (!FillBuffer(frame::kHeaderBytes + length)) return false;
    *payload = buffer_.substr(frame::kHeaderBytes, length);
    buffer_.erase(0, frame::kHeaderBytes + length);
    return true;
  }

  /// One pre-encoded frame out, one decoded response frame back — the
  /// zero-JSON round trip bench_serve measures (the frame is encoded once
  /// and reused across calls).
  bool CallBinary(const std::string& frame_bytes,
                  frame::FrameResponse* response) {
    if (!SendRaw(frame_bytes)) return false;
    std::string payload;
    if (!ReadFrame(&payload)) return false;
    auto decoded = frame::DecodeResponsePayload(payload);
    if (!decoded.ok()) {
      error_ = "bad response frame: " + decoded.status().message();
      return false;
    }
    *response = std::move(decoded.value());
    return true;
  }

 private:
  bool CallViaBinary(const std::string& line, std::string* response) {
    // Parse leniently (no model requirement, no batch cap — the server
    // enforces both with the same messages the JSON path uses) so every
    // server-acceptable line encodes structurally; anything unparseable
    // ships verbatim through the op=json escape hatch and gets the JSON
    // path's byte-identical error.
    auto parsed = ParseRequest(line, /*max_batch=*/1u << 30,
                               /*require_model=*/false);
    const std::string frame_bytes =
        parsed.ok() ? frame::EncodeRequestFrame(parsed.value())
                    : frame::EncodeJsonRequestFrame(line);
    frame::FrameResponse decoded;
    if (!CallBinary(frame_bytes, &decoded)) return false;
    *response = frame::ResponseToJsonLine(decoded);
    return true;
  }

  /// The negotiation probe: a binary ping frame plus a newline. The
  /// newline makes the probe one parseable-as-garbage line for JSON-only
  /// servers (they answer a '{'-prefixed error and we fall back); a
  /// binary server skips it between frames and answers a pong frame.
  bool Negotiate() {
    Request ping;
    ping.op = Request::Op::kPing;
    if (!SendRaw(frame::EncodeRequestFrame(ping) + "\n")) return false;
    if (!FillBuffer(1)) return false;
    if (static_cast<unsigned char>(buffer_[0]) == (frame::kMagic & 0xFF)) {
      std::string payload;
      if (!ReadFrame(&payload)) return false;  // the pong — discard
      binary_ = true;
      return true;
    }
    std::string discard;  // the JSON error line answering the probe
    if (!ReadLine(&discard)) return false;
    binary_ = false;
    return true;
  }

  /// Blocks until the buffer holds at least `need` bytes. Same error
  /// mapping as ReadLine (timeout vs peer close vs recv error).
  bool FillBuffer(size_t need) {
    while (buffer_.size() < need) {
      char chunk[64 * 1024];
      const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (got < 0 && errno == EINTR) continue;
      if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        error_ = "read timed out";
        return false;
      }
      if (got < 0) {
        error_ = std::string("recv: ") + std::strerror(errno);
        return false;
      }
      if (got == 0) {
        error_ = "connection closed by peer";
        return false;
      }
      buffer_.append(chunk, static_cast<size_t>(got));
    }
    return true;
  }

  bool ConnectBlocking(const sockaddr_in& addr) {
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return true;
    }
    error_ = std::string("connect: ") + std::strerror(errno);
    return false;
  }

  // Non-blocking connect + poll deadline, then back to blocking mode so
  // the IO path stays simple (per-op deadlines come from SO_RCVTIMEO).
  bool ConnectWithTimeout(const sockaddr_in& addr, int timeout_ms) {
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      error_ = std::string("connect: ") + std::strerror(errno);
      return false;
    }
    if (rc != 0) {
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLOUT;
      do {
        rc = ::poll(&pfd, 1, timeout_ms);
      } while (rc < 0 && errno == EINTR);
      if (rc == 0) {
        error_ = "connect timed out";
        return false;
      }
      if (rc < 0) {
        error_ = std::string("poll: ") + std::strerror(errno);
        return false;
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &so_error, &len);
      if (so_error != 0) {
        error_ = std::string("connect: ") + std::strerror(so_error);
        return false;
      }
    }
    ::fcntl(fd_, F_SETFL, flags);
    return true;
  }

  int fd_ = -1;
  bool connected_ = false;
  bool binary_ = false;
  std::string buffer_;
  std::string error_;
};

}  // namespace habit::server
