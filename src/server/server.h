// habit_serve's engine: a long-lived, multi-threaded line-protocol server
// holding ONE process-wide api::ModelCache. Each request line names its
// model by registry spec; the server validates the request *before*
// resolving the model (garbage input must never trigger a multi-second
// snapshot load), resolves through the cache (single-flight: N concurrent
// cold requests for one model pay one load), and answers Impute /
// ImputeBatch. Batches partition across a shared worker pool — one
// serial ImputeBatch chunk, and therefore one SearchScratch, per worker —
// which generalizes the in-process `threads=N` discipline across
// concurrent client connections: all connections feed the same pool, so
// total search parallelism stays bounded by `ServerOptions::threads`
// regardless of client count.
//
// Transports live in server/transport.h (LineTransport — shared with the
// habit_route shard router): a loopback TCP epoll event loop (idle
// connections cost a fd, not a thread; a router/load-balancer terminates
// external traffic) and a stdin/stdout pipe mode. Both protocols feed one
// dispatch path — JSON lines through HandleLine, binary frames
// (server/frame.h) through HandleFrame, which share ExecuteImpute so the
// answers are identical bit for bit.
//
// Observability is O(1)-memory under unbounded traffic: per-model query
// latency runs through P^2 quantile estimators (p50/p99) and distinct
// vessels through a HyperLogLog, both surfaced by the `stats` op — no
// per-request log retained, ever.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ais/ais.h"
#include "api/epoch.h"
#include "api/model_cache.h"
#include "core/sync.h"
#include "core/thread_annotations.h"
#include "server/protocol.h"
#include "server/transport.h"
#include "sketch/hyperloglog.h"
#include "sketch/quantile.h"

namespace habit::server {

/// \brief Fixed-size thread pool executing submitted closures; batch
/// handlers split work into chunks and wait on a per-batch latch.
///
/// All connections share one pool, so the process-wide search concurrency
/// is `workers` no matter how many clients are connected.
class WorkerPool {
 public:
  explicit WorkerPool(int workers);

  /// Shuts down (idempotent) and joins the worker threads. Tasks already
  /// queued still run to completion first — destruction drains, it never
  /// abandons work a RunAll caller is blocked on.
  ~WorkerPool();

  int workers() const { return workers_; }

  /// Runs `tasks` on the pool and blocks until all complete. The waiting
  /// thread HELPS: while its batch is outstanding it drains other RunAll
  /// tasks from the queue, so a Submit()ted frame handler may itself call
  /// RunAll (DispatchBatch) without deadlocking a fully-busy pool. RunAll
  /// leaf tasks themselves must not nest further.
  ///
  /// Returns non-OK without running anything when the pool has been shut
  /// down, and kInternal when a task threw (the exception is contained:
  /// remaining tasks still run, the worker thread survives, and the
  /// first exception's message is reported to THIS caller).
  Status RunAll(std::vector<std::function<void()>> tasks) EXCLUDES(mu_);

  /// Enqueues one fire-and-forget closure (the transport's frame
  /// handlers). Runs at lower priority than RunAll batch tasks — batch
  /// chunks are latency-critical sub-work of a frame already being
  /// handled. Returns non-OK (and does not run `work`) when the pool is
  /// shut down; the caller runs it inline instead.
  Status Submit(std::function<void()> work) EXCLUDES(mu_);

  /// Stops accepting work, drains the queue, and joins the workers. Safe
  /// to call from any thread, any number of times; the destructor calls
  /// it too. Subsequent RunAll calls fail cleanly instead of deadlocking
  /// on a dead pool.
  void Shutdown() EXCLUDES(mu_);

 private:
  void WorkerMain() EXCLUDES(mu_);

  const int workers_;  ///< resolved pool size (immutable after ctor)
  core::Mutex mu_;
  core::CondVar work_cv_;  ///< signaled on new work and on shutdown
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  /// Fire-and-forget closures (Submit): drained after queue_ so frame
  /// handling never starves the batch chunks of frames already running.
  std::deque<std::function<void()>> submitted_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
  /// Joinable workers; swapped out (under mu_) by the first Shutdown so
  /// concurrent shutdowns never double-join.
  std::vector<std::thread> threads_ GUARDED_BY(mu_);
};

/// The serving-surface spec policy, in ONE place (the request router and
/// habit_serve's --preload both enforce it — a param banned here must be
/// banned in both, or preload warms cache entries every request refuses):
/// save= is a file-write side effect, threads= is in-process concurrency
/// that would nest pools and key unbounded duplicate cache entries.
Status CheckServedSpec(const api::MethodSpec& spec);

/// \brief Configuration for a Server.
struct ServerOptions {
  size_t cache_bytes = 1ull << 30;  ///< ModelCache byte budget
  int threads = 0;      ///< worker pool size; 0 = hardware concurrency
  size_t max_batch = 4096;          ///< per-frame request cap
  size_t max_line_bytes = 4ull << 20;  ///< frame size cap (TCP + stdin)
};

/// \brief The long-lived serving frontend.
class Server {
 public:
  explicit Server(const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The whole request path: one protocol frame in, one response line out
  /// (no trailing newline). Thread-safe — every transport and test goes
  /// through here, so transport code stays a dumb byte shuttle.
  std::string HandleLine(std::string_view line) EXCLUDES(stats_mu_);

  /// The binary request path: one frame payload in (header stripped by
  /// the transport), one complete encoded response frame out. Structured
  /// impute ops skip JSON entirely; op=json payloads pass through
  /// HandleLine. Thread-safe, same as HandleLine.
  std::string HandleFrame(std::string_view payload) EXCLUDES(stats_mu_);

  /// Resolves `spec` through the process-wide cache, recording per-model
  /// request stats. Shared with habit_cli serve-from-snapshot, so the CLI
  /// and the server exercise the same resolution path.
  Result<std::shared_ptr<const api::ImputationModel>> Resolve(
      const api::MethodSpec& spec) EXCLUDES(stats_mu_);

  const api::ModelCache& cache() const { return cache_; }
  const ServerOptions& options() const { return options_; }

  /// Attaches the epoch pipeline behind the `ingest`/`rollover` ops and
  /// routes every trips-built (non-load=) spec resolution through the
  /// current epoch's cumulative trip set. `base` seeds epoch 0 (may be
  /// empty: the live spec then answers NotFound until the first
  /// rollover). Must be called before serving starts — the pointer is
  /// written once here and only read by request handlers afterwards.
  Status EnableIngest(api::EpochPipeline::Options options,
                      std::vector<ais::Trip> base);

  /// The attached pipeline (nullptr when ingest is disabled).
  const api::EpochPipeline* epoch_pipeline() const { return epoch_.get(); }

  /// Serves newline-delimited frames from `in` to `out` until EOF (the
  /// --stdin pipe mode; also the easiest harness for tests).
  void ServeStream(std::istream& in, std::ostream& out);

  /// Binds a loopback TCP listener. Port 0 picks an ephemeral port
  /// (bound_port() reports it).
  Status Listen(uint16_t port) { return transport_.Listen(port); }
  uint16_t bound_port() const { return transport_.bound_port(); }

  /// The listening socket (-1 before Listen).
  int listen_fd() const { return transport_.listen_fd(); }

  /// Stop eventfd: a signal handler write(2)s any value here to stop
  /// Serve() (async-signal-safe, reliably wakes the event loop).
  int stop_fd() const { return transport_.stop_fd(); }

  /// Worker pool size actually in effect (options.threads resolved).
  int workers() const { return pool_.workers(); }

  /// Accept loop (see LineTransport::Serve): returns after Shutdown()
  /// once every connection has drained.
  Status Serve() { return transport_.Serve(); }

  /// Stops Serve(): shuts down the listener and every connection socket,
  /// waking their threads. Safe to call from any thread; ~Server waits
  /// for connections to drain.
  void Shutdown() { transport_.Shutdown(); }

 private:
  struct ModelStats {
    uint64_t resolves = 0;  ///< cache resolutions (frames + CLI lookups)
    uint64_t queries_ok = 0;
    uint64_t queries_failed = 0;
    /// Per-query wall-time percentiles, O(1) memory under unbounded
    /// traffic (P^2 estimators — no latency log retained).
    sketch::P2Quantile latency_p50{0.5};
    sketch::P2Quantile latency_p99{0.99};
    /// Distinct vessels seen by this model (requests carrying "vessel").
    sketch::HyperLogLog vessels{12};
  };

  std::string HandleParsed(const Request& request);
  std::string HandleImpute(const Request& request);

  /// The shared ingest/rollover engine behind both protocols: stages the
  /// frame's trips (or forces the epoch boundary) and reports
  /// {epoch, accepted, pending}; the caller renders its wire format.
  Status ExecuteIngest(const Request& request, uint64_t* epoch,
                       uint64_t* accepted, uint64_t* pending)
      EXCLUDES(stats_mu_);

  /// The shared impute engine behind both protocols: validation (with the
  /// JSON path's field naming), spec policy, cache resolution, pool
  /// dispatch, and stats recording. Returns the per-request results or
  /// the frame-level rejection status; the caller renders whichever
  /// wire format its protocol speaks.
  Result<std::vector<Result<api::ImputeResponse>>> ExecuteImpute(
      const Request& request) EXCLUDES(stats_mu_);

  /// Builds the frame-level error response and counts it in
  /// frames_rejected_ — every ok:false *frame* goes through here, so the
  /// stats counter covers all rejection classes (framing, validation,
  /// spec errors, resolution failures), not a subset.
  std::string RejectFrame(const Status& status, const Json& id = Json())
      EXCLUDES(stats_mu_);
  std::string StatsLine(const Json& id) EXCLUDES(stats_mu_);
  std::string MethodsLine(const Json& id);

  /// Partitions `requests` across the worker pool (one serial
  /// ImputeBatch chunk per worker) and returns results aligned with the
  /// input — byte-identical to one in-process ImputeBatch call. When
  /// `query_seconds` is non-null it receives per-query wall times aligned
  /// with the input (the latency percentile feed).
  std::vector<Result<api::ImputeResponse>> DispatchBatch(
      const api::ImputationModel& model,
      std::span<const api::ImputeRequest> requests,
      std::vector<double>* query_seconds = nullptr);

  ServerOptions options_;
  api::ModelCache cache_;
  /// Written once by EnableIngest before serving, read-only afterwards
  /// (request handlers never mutate it) — declared after cache_ so the
  /// builder thread outlives nothing it uses, and before transport_ so
  /// in-flight handlers drain before the pipeline stops.
  std::unique_ptr<api::EpochPipeline> epoch_;
  WorkerPool pool_;

  /// Guards every serving counter below: connection threads write them
  /// per frame while the `stats` op reads a consistent snapshot.
  core::Mutex stats_mu_;
  /// canonical spec -> stats
  std::map<std::string, ModelStats> model_stats_ GUARDED_BY(stats_mu_);
  uint64_t frames_total_ GUARDED_BY(stats_mu_) = 0;
  uint64_t frames_rejected_ GUARDED_BY(stats_mu_) = 0;

  /// Last member: its destructor drains the event loop and every
  /// in-flight frame, whose handlers (HandleLine/HandleFrame) touch
  /// everything above until they finish.
  LineTransport transport_;
};

}  // namespace habit::server
