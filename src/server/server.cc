#include "server/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <istream>
#include <ostream>
#include <utility>

#include "api/registry.h"

namespace habit::server {

// ---------------------------------------------------------------- WorkerPool

WorkerPool::WorkerPool(int workers) {
  const int n = workers > 0
                    ? workers
                    : static_cast<int>(std::thread::hardware_concurrency());
  const int count = n > 0 ? n : 1;
  threads_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::WorkerMain() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void WorkerPool::RunAll(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  // Per-batch completion latch: the submitting (connection) thread blocks
  // here, not on the pool, so many connections can have batches in flight
  // while total search concurrency stays at workers().
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining;
  };
  auto latch = std::make_shared<Latch>();
  latch->remaining = tasks.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::function<void()>& task : tasks) {
      queue_.push_back([task = std::move(task), latch] {
        task();
        std::lock_guard<std::mutex> done_lock(latch->mu);
        if (--latch->remaining == 0) latch->cv.notify_all();
      });
    }
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> wait_lock(latch->mu);
  latch->cv.wait(wait_lock, [&latch] { return latch->remaining == 0; });
}

// -------------------------------------------------------------------- Server

Status CheckServedSpec(const api::MethodSpec& spec) {
  // save= has a write side effect per resolution; a query surface must
  // not be a remote file-writing primitive.
  if (spec.params.contains("save")) {
    return Status::InvalidArgument(
        "save= is not allowed in a served model spec");
  }
  // threads= is the *in-process* batch-parallelism knob; under the server
  // the worker pool owns concurrency. Letting clients set it would nest
  // thread pools (workers x threads searches per frame, unbounded by
  // --threads) and key a distinct cache entry per value — an easy way to
  // flood the byte budget with duplicate models.
  if (spec.params.contains("threads")) {
    return Status::InvalidArgument(
        "threads= is not allowed in a served model spec (concurrency is "
        "the server's --threads worker pool)");
  }
  return Status::OK();
}

Server::Server(const ServerOptions& options)
    : options_(options), cache_(options.cache_bytes), pool_(options.threads) {}

Server::~Server() {
  Shutdown();
  // Connection threads are detached but counted; they touch no Server
  // state after their final decrement, so once the count drains the
  // object is safe to destroy.
  std::unique_lock<std::mutex> lock(conn_mu_);
  conn_cv_.wait(lock, [this] { return active_conns_ == 0; });
  lock.unlock();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

Result<std::shared_ptr<const api::ImputationModel>> Server::Resolve(
    const api::MethodSpec& spec) {
  auto model = cache_.Get(spec);
  if (model.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++model_stats_[spec.ToString()].resolves;
  }
  return model;
}

std::string Server::HandleLine(std::string_view line) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++frames_total_;
  }
  if (line.size() > options_.max_line_bytes) {
    return RejectFrame(Status::InvalidArgument(
        "frame of " + std::to_string(line.size()) +
        " bytes exceeds the limit of " +
        std::to_string(options_.max_line_bytes)));
  }
  auto parsed = ParseRequest(line, options_.max_batch);
  if (!parsed.ok()) return RejectFrame(parsed.status());
  return HandleParsed(parsed.value());
}

std::string Server::RejectFrame(const Status& status, const Json& id) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++frames_rejected_;
  }
  return ErrorResponseLine(status, id);
}

std::string Server::HandleParsed(const Request& request) {
  switch (request.op) {
    case Request::Op::kPing: {
      Json frame = Json::Object();
      frame.Set("ok", Json::Bool(true));
      frame.Set("op", Json::String("ping"));
      if (!request.id.is_null()) frame.Set("id", request.id);
      return frame.Dump();
    }
    case Request::Op::kMethods:
      return MethodsLine(request.id);
    case Request::Op::kStats:
      return StatsLine(request.id);
    case Request::Op::kImpute:
    case Request::Op::kImputeBatch:
      return HandleImpute(request);
  }
  return ErrorResponseLine(Status::Internal("unhandled op"));
}

std::string Server::HandleImpute(const Request& request) {
  // Validate every query before touching the cache: an invalid request
  // must never trigger (or wait on) a snapshot load. The whole frame is
  // rejected fail-fast — a client sending garbage gets told so instead of
  // paying for the valid remainder.
  for (size_t i = 0; i < request.requests.size(); ++i) {
    const Status valid = api::ValidateRequest(request.requests[i]);
    if (!valid.ok()) {
      // Name the field the client actually sent: "request" for the
      // single-impute op, the failing array index for batches.
      const std::string field = request.op == Request::Op::kImpute
                                    ? "request"
                                    : "requests[" + std::to_string(i) + "]";
      return RejectFrame(
          Status::InvalidArgument(field + ": " + valid.message()),
          request.id);
    }
  }

  auto spec = api::MethodSpec::Parse(request.model);
  if (!spec.ok()) return RejectFrame(spec.status(), request.id);
  if (const Status policy = CheckServedSpec(spec.value()); !policy.ok()) {
    return RejectFrame(policy, request.id);
  }
  auto model = Resolve(spec.value());
  if (!model.ok()) return RejectFrame(model.status(), request.id);

  const std::vector<Result<api::ImputeResponse>> results =
      DispatchBatch(*model.value(), request.requests);

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ModelStats& stats = model_stats_[spec.value().ToString()];
    for (const auto& result : results) {
      if (result.ok()) {
        ++stats.queries_ok;
      } else {
        ++stats.queries_failed;
      }
    }
  }

  if (request.op == Request::Op::kImpute) {
    return ImputeResponseLine(results.front(), request.id);
  }
  return BatchResponseLine(results, request.id);
}

std::vector<Result<api::ImputeResponse>> Server::DispatchBatch(
    const api::ImputationModel& model,
    std::span<const api::ImputeRequest> requests) {
  const size_t n = requests.size();
  const size_t chunks =
      std::min(static_cast<size_t>(pool_.workers()), n > 0 ? n : 1);
  if (chunks <= 1) {
    // Still runs on the pool: every search runs on a worker thread, so
    // process-wide search concurrency is bounded by the pool size no
    // matter how many connection threads exist.
    std::vector<Result<api::ImputeResponse>> results;
    pool_.RunAll({[&] { results = model.ImputeBatch(requests); }});
    return results;
  }
  // Partition across workers, one serial sub-batch (and therefore one
  // SearchScratch, inside the adapter's ImputeBatch) per chunk. Queries
  // are independent, so chunked results concatenate to exactly the
  // single-call ImputeBatch output.
  std::vector<std::vector<Result<api::ImputeResponse>>> parts(chunks);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = n * c / chunks;
    const size_t end = n * (c + 1) / chunks;
    tasks.push_back([&model, &parts, requests, c, begin, end] {
      parts[c] = model.ImputeBatch(requests.subspan(begin, end - begin));
    });
  }
  pool_.RunAll(std::move(tasks));
  std::vector<Result<api::ImputeResponse>> results;
  results.reserve(n);
  for (std::vector<Result<api::ImputeResponse>>& part : parts) {
    for (Result<api::ImputeResponse>& result : part) {
      results.push_back(std::move(result));
    }
  }
  return results;
}

std::string Server::MethodsLine(const Json& id) {
  const api::ModelRegistry& registry = api::ModelRegistry::Global();
  Json frame = Json::Object();
  frame.Set("ok", Json::Bool(true));
  Json methods = Json::Array();
  for (const std::string& name : registry.MethodNames()) {
    Json entry = Json::Object();
    entry.Set("name", Json::String(name));
    entry.Set("description", Json::String(registry.Description(name)));
    methods.Append(std::move(entry));
  }
  frame.Set("methods", std::move(methods));
  if (!id.is_null()) frame.Set("id", id);
  return frame.Dump();
}

std::string Server::StatsLine(const Json& id) {
  const api::ModelCache::Stats cache_stats = cache_.stats();
  Json frame = Json::Object();
  frame.Set("ok", Json::Bool(true));
  Json cache = Json::Object();
  cache.Set("budget_bytes",
            Json::Number(static_cast<double>(cache_.byte_budget())));
  cache.Set("cached_bytes",
            Json::Number(static_cast<double>(cache_.SizeBytes())));
  cache.Set("models", Json::Number(static_cast<double>(cache_.num_models())));
  cache.Set("hits", Json::Number(static_cast<double>(cache_stats.hits)));
  cache.Set("misses", Json::Number(static_cast<double>(cache_stats.misses)));
  cache.Set("evictions",
            Json::Number(static_cast<double>(cache_stats.evictions)));
  cache.Set("coalesced",
            Json::Number(static_cast<double>(cache_stats.coalesced)));
  frame.Set("cache", std::move(cache));
  frame.Set("workers", Json::Number(pool_.workers()));

  std::lock_guard<std::mutex> lock(stats_mu_);
  frame.Set("frames", Json::Number(static_cast<double>(frames_total_)));
  frame.Set("frames_rejected",
            Json::Number(static_cast<double>(frames_rejected_)));
  Json models = Json::Array();
  for (const auto& [spec, stats] : model_stats_) {
    Json entry = Json::Object();
    entry.Set("model", Json::String(spec));
    entry.Set("resolves", Json::Number(static_cast<double>(stats.resolves)));
    entry.Set("queries_ok",
              Json::Number(static_cast<double>(stats.queries_ok)));
    entry.Set("queries_failed",
              Json::Number(static_cast<double>(stats.queries_failed)));
    models.Append(std::move(entry));
  }
  frame.Set("models", std::move(models));
  if (!id.is_null()) frame.Set("id", id);
  return frame.Dump();
}

namespace {

// Drains complete newline-terminated lines from *buffer ('\r' stripped,
// blank lines skipped), calling emit(line) for each. emit returns false
// to stop; consumed bytes are erased either way. Used by the TCP
// transport; ServeStream frames per character (it must answer the moment
// a newline arrives on a still-open pipe) but follows the same rules —
// the framing contract shared by both lives in the server tests.
template <typename EmitFn>
bool DrainLines(std::string* buffer, const EmitFn& emit) {
  size_t start = 0;
  size_t nl;
  bool keep_going = true;
  while (keep_going &&
         (nl = buffer->find('\n', start)) != std::string::npos) {
    std::string_view line(buffer->data() + start, nl - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    start = nl + 1;
    if (line.empty()) continue;
    keep_going = emit(line);
  }
  buffer->erase(0, start);
  return keep_going;
}

// True when the buffer holds an unterminated frame already past the cap —
// it can never become a valid line, so the transport answers once and
// stops instead of buffering unboundedly.
bool FrameOverflowed(const std::string& buffer, size_t max_line_bytes) {
  return buffer.find('\n') == std::string::npos &&
         buffer.size() > max_line_bytes;
}

}  // namespace

void Server::ServeStream(std::istream& in, std::ostream& out) {
  // Character-at-a-time so each frame is answered the moment its newline
  // arrives — a block read would sit on a long-lived pipe waiting for a
  // full chunk while the writer waits for the response (deadlock). The
  // per-char overhead is irrelevant next to request handling, and the
  // line buffer stays bounded by the same cap as the TCP path.
  std::string line;
  const auto emit = [this, &out](std::string_view frame) {
    if (!frame.empty() && frame.back() == '\r') frame.remove_suffix(1);
    if (frame.empty()) return true;
    out << HandleLine(frame) << '\n';
    out.flush();
    return static_cast<bool>(out);
  };
  int ch;
  while ((ch = in.get()) != std::char_traits<char>::eof()) {
    if (ch == '\n') {
      if (!emit(line)) return;
      line.clear();
      continue;
    }
    line.push_back(static_cast<char>(ch));
    // Same oversized-frame rule as the TCP path: any frame past the cap —
    // terminated or not — is answered once and serving stops (the buffer
    // must not grow with the input, and the rule must not depend on where
    // chunk boundaries landed).
    if (line.size() > options_.max_line_bytes) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++frames_total_;
      }
      out << RejectFrame(Status::InvalidArgument(
                 "frame exceeds " +
                 std::to_string(options_.max_line_bytes) + " bytes"))
          << '\n';
      out.flush();
      return;
    }
  }
  // A final unterminated frame at EOF is still answered (piping a single
  // request without a trailing newline is too common to reject).
  emit(line);
}

// ----------------------------------------------------------------- TCP layer

Status Server::Listen(uint16_t port) {
  if (listen_fd_ >= 0) return Status::Internal("already listening");
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  // Loopback only: external traffic belongs behind a router/LB (which is
  // also where the ROADMAP's sharding layer goes), not on a raw port.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st =
        Status::IoError(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 128) < 0) {
    const Status st =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }
  listen_fd_ = fd;
  return Status::OK();
}

Status Server::Serve() {
  if (listen_fd_ < 0) return Status::Internal("Listen() first");
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Transient resource exhaustion: back off instead of shutting the
        // whole server down — the condition clears when clients close.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      break;  // listener shut down (Shutdown / signal handler) or broken
    }
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_fds_.push_back(fd);
      ++active_conns_;
    }
    // Detached but counted: a terminated connection must not keep a
    // joinable thread (and its stack) alive until server teardown.
    std::thread([this, fd] { ServeConnection(fd); }).detach();
  }
  // The accept loop only exits to shut down — including via the signal
  // handler, which can only shutdown(2) the *listen* fd (the one
  // async-signal-safe option). Run the full Shutdown here so open
  // connections are woken too; otherwise one idle client would keep the
  // drain wait below blocked forever.
  Shutdown();
  std::unique_lock<std::mutex> lock(conn_mu_);
  conn_cv_.wait(lock, [this] { return active_conns_ == 0; });
  return Status::OK();
}

void Server::Shutdown() {
  stopping_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
}

namespace {

// Writes the whole buffer, riding out partial writes; MSG_NOSIGNAL so a
// client that vanished mid-response surfaces as EPIPE, not SIGPIPE.
bool SendAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    const ssize_t sent = ::send(fd, data, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += sent;
    n -= static_cast<size_t>(sent);
  }
  return true;
}

}  // namespace

void Server::ServeConnection(int fd) {
  std::string buffer;
  char chunk[64 * 1024];
  // One deterministic oversized-frame rule (not dependent on where recv
  // chunk boundaries land): any frame past the cap is answered with an
  // error once and the connection closed. Terminated oversized lines are
  // answered (and counted) through HandleLine; emit then stops the
  // connection.
  const auto emit = [this, fd](std::string_view line) {
    const std::string response = HandleLine(line) + "\n";
    return SendAll(fd, response.data(), response.size()) &&
           line.size() <= options_.max_line_bytes;
  };
  while (true) {
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) break;  // peer closed or connection shut down
    buffer.append(chunk, static_cast<size_t>(got));
    // An unterminated frame already past the cap can never become valid;
    // answer once and hang up rather than buffering unboundedly.
    if (FrameOverflowed(buffer, options_.max_line_bytes)) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++frames_total_;
      }
      const std::string response =
          RejectFrame(Status::InvalidArgument(
              "frame exceeds " + std::to_string(options_.max_line_bytes) +
              " bytes")) +
          "\n";
      SendAll(fd, response.data(), response.size());
      buffer.clear();  // already answered; don't also treat as a trailing frame
      break;
    }
    if (!DrainLines(&buffer, emit)) {
      buffer.clear();
      break;
    }
  }
  // A final unterminated frame before peer EOF / half-close is answered,
  // matching ServeStream — a client that sends one request and
  // shutdown(SHUT_WR)s still gets its response.
  if (!buffer.empty()) {
    std::string_view line(buffer);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty()) emit(line);
  }
  // Final decrement wakes Serve()/~Server(); no Server state is touched
  // after it (this thread is detached).
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (size_t i = 0; i < conn_fds_.size(); ++i) {
      if (conn_fds_[i] == fd) {
        conn_fds_.erase(conn_fds_.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
    --active_conns_;
    conn_cv_.notify_all();
  }
  ::close(fd);
}

}  // namespace habit::server
