#include "server/server.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "api/registry.h"
#include "server/frame.h"

namespace habit::server {

// ---------------------------------------------------------------- WorkerPool

namespace {

int ResolveWorkerCount(int workers) {
  const int n = workers > 0
                    ? workers
                    : static_cast<int>(std::thread::hardware_concurrency());
  return n > 0 ? n : 1;
}

}  // namespace

WorkerPool::WorkerPool(int workers) : workers_(ResolveWorkerCount(workers)) {
  threads_.reserve(static_cast<size_t>(workers_));
  for (int i = 0; i < workers_; ++i) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

WorkerPool::~WorkerPool() { Shutdown(); }

void WorkerPool::Shutdown() {
  // The first caller swaps the joinable threads out under the lock, so a
  // concurrent Shutdown (or the destructor racing an explicit call) never
  // double-joins; later callers see an empty vector and return.
  std::vector<std::thread> joinable;
  {
    core::MutexLock lock(mu_);
    stopping_ = true;
    joinable.swap(threads_);
  }
  work_cv_.NotifyAll();
  for (std::thread& t : joinable) t.join();
}

void WorkerPool::WorkerMain() {
  while (true) {
    std::function<void()> task;
    {
      core::MutexLock lock(mu_);
      while (!stopping_ && queue_.empty() && submitted_.empty()) {
        work_cv_.Wait(mu_);
      }
      // Batch chunks first: they are sub-work of frames already being
      // handled, so finishing them beats starting new frames.
      if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      } else if (!submitted_.empty()) {
        task = std::move(submitted_.front());
        submitted_.pop_front();
      } else {
        return;  // stopping, both queues drained
      }
    }
    task();
  }
}

Status WorkerPool::Submit(std::function<void()> work) {
  {
    core::MutexLock lock(mu_);
    if (stopping_) {
      // The workers may already be gone; the caller runs inline instead
      // of stranding the closure (a dropped frame handler would leak the
      // transport's in-flight count).
      return Status::Internal("worker pool is shut down");
    }
    submitted_.push_back(std::move(work));
  }
  work_cv_.NotifyOne();
  return Status::OK();
}

Status WorkerPool::RunAll(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return Status::OK();
  // Per-batch completion latch: the submitting (connection) thread blocks
  // here, not on the pool, so many connections can have batches in flight
  // while total search concurrency stays at workers().
  struct Latch {
    core::Mutex mu;
    core::CondVar cv;
    size_t remaining GUARDED_BY(mu) = 0;
    /// First exception any task of this batch threw (the rest still run).
    std::exception_ptr error GUARDED_BY(mu);
  };
  auto latch = std::make_shared<Latch>();
  {
    core::MutexLock lock(latch->mu);
    latch->remaining = tasks.size();
  }
  {
    core::MutexLock lock(mu_);
    if (stopping_) {
      // Enqueueing onto a stopping pool could strand this caller forever
      // (the workers may already be gone); fail loudly instead.
      return Status::Internal("worker pool is shut down");
    }
    for (std::function<void()>& task : tasks) {
      queue_.push_back([task = std::move(task), latch] {
        // Contain task exceptions: an escaping exception on a worker
        // thread is std::terminate, and a skipped latch decrement wedges
        // the submitter forever. The first exception is reported to the
        // RunAll caller; the worker thread itself survives.
        try {
          task();
        } catch (...) {
          core::MutexLock error_lock(latch->mu);
          if (!latch->error) latch->error = std::current_exception();
        }
        core::MutexLock done_lock(latch->mu);
        if (--latch->remaining == 0) latch->cv.NotifyAll();
      });
    }
  }
  work_cv_.NotifyAll();
  // Help while waiting: drain queue_ tasks on THIS thread until the batch
  // completes. A frame handler running on a worker (Submit) that calls
  // RunAll therefore always makes progress — even with every worker busy
  // in nested RunAll, each waiter executes its own batch's chunks. Safe
  // against missed wakeups because this batch is fully enqueued above:
  // once queue_ looks empty, our chunks are running or done, and the
  // latch re-check under its mutex catches the final completion.
  std::exception_ptr error;
  while (true) {
    std::function<void()> task;
    {
      core::MutexLock lock(mu_);
      if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      }
    }
    if (task) {
      task();
      continue;
    }
    core::MutexLock wait_lock(latch->mu);
    if (latch->remaining == 0) {
      error = latch->error;
      break;
    }
    latch->cv.Wait(latch->mu);
  }
  if (error) {
    try {
      std::rethrow_exception(error);
    } catch (const std::exception& e) {
      return Status::Internal(std::string("worker task threw: ") + e.what());
    } catch (...) {
      return Status::Internal("worker task threw a non-std exception");
    }
  }
  return Status::OK();
}

// -------------------------------------------------------------------- Server

Status CheckServedSpec(const api::MethodSpec& spec) {
  // save= has a write side effect per resolution; a query surface must
  // not be a remote file-writing primitive.
  if (spec.params.contains("save")) {
    return Status::InvalidArgument(
        "save= is not allowed in a served model spec");
  }
  // threads= is the *in-process* batch-parallelism knob; under the server
  // the worker pool owns concurrency. Letting clients set it would nest
  // thread pools (workers x threads searches per frame, unbounded by
  // --threads) and key a distinct cache entry per value — an easy way to
  // flood the byte budget with duplicate models.
  if (spec.params.contains("threads")) {
    return Status::InvalidArgument(
        "threads= is not allowed in a served model spec (concurrency is "
        "the server's --threads worker pool)");
  }
  return Status::OK();
}

Server::Server(const ServerOptions& options)
    : options_(options),
      cache_(options.cache_bytes),
      pool_(options.threads),
      transport_(
          options.max_line_bytes,
          TransportHooks{
              .handle = [this](std::string_view line) {
                return HandleLine(line);
              },
              .handle_frame = [this](std::string_view payload) {
                return HandleFrame(payload);
              },
              // The transport's unterminated-overflow answer: count the
              // frame (HandleLine never saw it) and reject it with the
              // same message a terminated oversized line gets.
              .oversize = [this] {
                {
                  core::MutexLock lock(stats_mu_);
                  ++frames_total_;
                }
                return RejectFrame(Status::InvalidArgument(
                    "frame exceeds " +
                    std::to_string(options_.max_line_bytes) + " bytes"));
              },
              // Framing-level binary violations (oversized declared
              // length, bad magic): HandleFrame never saw them, so count
              // both the frame and the rejection here.
              .frame_error = [this](const Status& error) {
                {
                  core::MutexLock lock(stats_mu_);
                  ++frames_total_;
                  ++frames_rejected_;
                }
                return frame::EncodeErrorFrame(error, Json());
              },
              .submit = [this](std::function<void()> work) {
                return pool_.Submit(std::move(work));
              },
          }) {}

// transport_ is the last member: its destructor shuts the listener down
// and drains connection threads (which call HandleLine) before the cache
// and pool above it are destroyed.
Server::~Server() = default;

Result<std::shared_ptr<const api::ImputationModel>> Server::Resolve(
    const api::MethodSpec& spec) {
  auto model = cache_.Get(spec);
  if (model.ok()) {
    core::MutexLock lock(stats_mu_);
    ++model_stats_[spec.ToString()].resolves;
  }
  return model;
}

Status Server::EnableIngest(api::EpochPipeline::Options options,
                            std::vector<ais::Trip> base) {
  if (epoch_ != nullptr) {
    return Status::AlreadyExists("ingest is already enabled");
  }
  HABIT_ASSIGN_OR_RETURN(
      epoch_, api::EpochPipeline::Make(&cache_, std::move(options),
                                       std::move(base)));
  return Status::OK();
}

Status Server::ExecuteIngest(const Request& request, uint64_t* epoch,
                             uint64_t* accepted, uint64_t* pending) {
  if (epoch_ == nullptr) {
    return Status::InvalidArgument(
        "ingest is not enabled (start habit_serve with --ingest-spec)");
  }
  if (request.op == Request::Op::kRollover) {
    HABIT_ASSIGN_OR_RETURN(*epoch, epoch_->Rollover());
    *accepted = 0;
    *pending = epoch_->stats().pending_trips;
    return Status::OK();
  }
  // The parsed request is shared between protocols and handlers keep it
  // const; the pipeline owns the staged trips, so the frame's copy moves.
  std::vector<ais::Trip> trips = request.trips;
  return epoch_->Ingest(std::move(trips), accepted, pending, epoch);
}

std::string Server::HandleLine(std::string_view line) {
  {
    core::MutexLock lock(stats_mu_);
    ++frames_total_;
  }
  if (line.size() > options_.max_line_bytes) {
    return RejectFrame(Status::InvalidArgument(
        "frame of " + std::to_string(line.size()) +
        " bytes exceeds the limit of " +
        std::to_string(options_.max_line_bytes)));
  }
  auto parsed = ParseRequest(line, options_.max_batch);
  if (!parsed.ok()) return RejectFrame(parsed.status());
  return HandleParsed(parsed.value());
}

std::string Server::RejectFrame(const Status& status, const Json& id) {
  {
    core::MutexLock lock(stats_mu_);
    ++frames_rejected_;
  }
  return ErrorResponseLine(status, id);
}

std::string Server::HandleParsed(const Request& request) {
  switch (request.op) {
    case Request::Op::kPing: {
      Json frame = Json::Object();
      frame.Set("ok", Json::Bool(true));
      frame.Set("op", Json::String("ping"));
      if (!request.id.is_null()) frame.Set("id", request.id);
      return frame.Dump();
    }
    case Request::Op::kMethods:
      return MethodsLine(request.id);
    case Request::Op::kStats:
      return StatsLine(request.id);
    case Request::Op::kImpute:
    case Request::Op::kImputeBatch:
      return HandleImpute(request);
    case Request::Op::kIngest:
    case Request::Op::kRollover: {
      uint64_t epoch = 0, accepted = 0, pending = 0;
      const Status status =
          ExecuteIngest(request, &epoch, &accepted, &pending);
      if (!status.ok()) return RejectFrame(status, request.id);
      return AckResponseLine(
          request.op == Request::Op::kIngest ? "ingest" : "rollover", epoch,
          accepted, pending, request.id);
    }
  }
  return ErrorResponseLine(Status::Internal("unhandled op"));
}

std::string Server::HandleImpute(const Request& request) {
  auto results = ExecuteImpute(request);
  if (!results.ok()) return RejectFrame(results.status(), request.id);
  if (request.op == Request::Op::kImpute) {
    return ImputeResponseLine(results.value().front(), request.id);
  }
  return BatchResponseLine(results.value(), request.id);
}

Result<std::vector<Result<api::ImputeResponse>>> Server::ExecuteImpute(
    const Request& request) {
  // Validate every query before touching the cache: an invalid request
  // must never trigger (or wait on) a snapshot load. The whole frame is
  // rejected fail-fast — a client sending garbage gets told so instead of
  // paying for the valid remainder.
  for (size_t i = 0; i < request.requests.size(); ++i) {
    const Status valid = api::ValidateRequest(request.requests[i]);
    if (!valid.ok()) {
      // Name the field the client actually sent: "request" for the
      // single-impute op, the failing array index for batches.
      const std::string field = request.op == Request::Op::kImpute
                                    ? "request"
                                    : "requests[" + std::to_string(i) + "]";
      return Status::InvalidArgument(field + ": " + valid.message());
    }
  }

  auto spec = api::MethodSpec::Parse(request.model);
  if (!spec.ok()) return spec.status();
  HABIT_RETURN_NOT_OK(CheckServedSpec(spec.value()));
  Result<std::shared_ptr<const api::ImputationModel>> model =
      Status::Internal("unresolved");
  if (epoch_ != nullptr && !spec.value().params.contains("load")) {
    // Live serving: a trips-built spec resolves against the current
    // epoch's cumulative trip set. The EpochedModel pins one epoch for
    // this whole request — a concurrent swap retires the cache entry but
    // never this handle.
    auto epoched = epoch_->Resolve(spec.value());
    if (!epoched.ok()) return epoched.status();
    model = std::move(epoched.value().model);
    core::MutexLock lock(stats_mu_);
    ++model_stats_[spec.value().ToString()].resolves;
  } else {
    model = Resolve(spec.value());
    if (!model.ok()) return model.status();
  }

  std::vector<double> query_seconds;
  std::vector<Result<api::ImputeResponse>> results =
      DispatchBatch(*model.value(), request.requests, &query_seconds);

  {
    core::MutexLock lock(stats_mu_);
    ModelStats& stats = model_stats_[spec.value().ToString()];
    for (size_t i = 0; i < results.size(); ++i) {
      if (results[i].ok()) {
        ++stats.queries_ok;
      } else {
        ++stats.queries_failed;
      }
      // Failed queries feed the sketches too: a pathological query that
      // burns the whole A* budget before failing is exactly what a p99
      // should surface.
      const double ms = query_seconds[i] * 1e3;
      stats.latency_p50.Add(ms);
      stats.latency_p99.Add(ms);
      if (request.requests[i].vessel_id.has_value()) {
        stats.vessels.AddInt(
            static_cast<uint64_t>(*request.requests[i].vessel_id));
      }
    }
  }
  return results;
}

std::string Server::HandleFrame(std::string_view payload) {
  auto decoded = frame::DecodeRequestPayload(payload, options_.max_batch,
                                             /*require_model=*/true);
  if (!decoded.ok()) {
    // A malformed payload carries no recoverable id; count the frame and
    // the rejection (HandleLine never saw it).
    {
      core::MutexLock lock(stats_mu_);
      ++frames_total_;
      ++frames_rejected_;
    }
    return frame::EncodeErrorFrame(decoded.status(), Json());
  }
  if (decoded.value().is_json) {
    // The escape hatch: the inner line runs the full JSON dispatch path
    // (which does its own counting) and the response travels back framed.
    return frame::EncodeJsonResponseFrame(HandleLine(decoded.value().json));
  }
  const Request& request = decoded.value().request;
  {
    core::MutexLock lock(stats_mu_);
    ++frames_total_;
  }
  switch (request.op) {
    case Request::Op::kPing:
      return frame::EncodePongFrame(request.id);
    case Request::Op::kMethods:
      return frame::EncodeJsonResponseFrame(MethodsLine(request.id));
    case Request::Op::kStats:
      return frame::EncodeJsonResponseFrame(StatsLine(request.id));
    case Request::Op::kImpute:
    case Request::Op::kImputeBatch: {
      auto results = ExecuteImpute(request);
      if (!results.ok()) {
        {
          core::MutexLock lock(stats_mu_);
          ++frames_rejected_;
        }
        return frame::EncodeErrorFrame(results.status(), request.id);
      }
      return frame::EncodeResultsFrame(
          results.value(), request.id,
          /*batch=*/request.op == Request::Op::kImputeBatch);
    }
    case Request::Op::kIngest:
    case Request::Op::kRollover: {
      uint64_t epoch = 0, accepted = 0, pending = 0;
      const Status status =
          ExecuteIngest(request, &epoch, &accepted, &pending);
      if (!status.ok()) {
        {
          core::MutexLock lock(stats_mu_);
          ++frames_rejected_;
        }
        return frame::EncodeErrorFrame(status, request.id);
      }
      return frame::EncodeAckFrame(request.op, epoch, accepted, pending,
                                   request.id);
    }
  }
  return frame::EncodeErrorFrame(Status::Internal("unhandled op"), Json());
}

std::vector<Result<api::ImputeResponse>> Server::DispatchBatch(
    const api::ImputationModel& model,
    std::span<const api::ImputeRequest> requests,
    std::vector<double>* query_seconds) {
  const size_t n = requests.size();
  const size_t chunks =
      std::min(static_cast<size_t>(pool_.workers()), n > 0 ? n : 1);
  // A pool failure (shutdown mid-request, or a task that threw inside
  // ImputeBatch) yields per-request errors aligned with the input — the
  // response stays well-formed and the frame is still answered.
  const auto fail_all = [&](const Status& status) {
    std::vector<Result<api::ImputeResponse>> failed;
    failed.reserve(n);
    for (size_t i = 0; i < n; ++i) failed.emplace_back(status);
    if (query_seconds != nullptr) query_seconds->assign(n, 0.0);
    return failed;
  };
  if (chunks <= 1) {
    // Still runs on the pool: every search runs on a worker thread, so
    // process-wide search concurrency is bounded by the pool size no
    // matter how many connection threads exist.
    std::vector<Result<api::ImputeResponse>> results;
    const Status run = pool_.RunAll(
        {[&] { results = model.ImputeBatch(requests, query_seconds); }});
    if (!run.ok()) return fail_all(run);
    return results;
  }
  // Partition across workers, one serial sub-batch (and therefore one
  // SearchScratch, inside the adapter's ImputeBatch) per chunk. Queries
  // are independent, so chunked results concatenate to exactly the
  // single-call ImputeBatch output. Per-query wall times come from the
  // adapter's own measurement (the paper's Table 4 latency), stitched
  // back into request order alongside the results.
  std::vector<std::vector<Result<api::ImputeResponse>>> parts(chunks);
  std::vector<std::vector<double>> part_seconds(chunks);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = n * c / chunks;
    const size_t end = n * (c + 1) / chunks;
    tasks.push_back(
        [&model, &parts, &part_seconds, query_seconds, requests, c, begin,
         end] {
          parts[c] = model.ImputeBatch(
              requests.subspan(begin, end - begin),
              query_seconds != nullptr ? &part_seconds[c] : nullptr);
        });
  }
  const Status run = pool_.RunAll(std::move(tasks));
  if (!run.ok()) return fail_all(run);
  std::vector<Result<api::ImputeResponse>> results;
  results.reserve(n);
  if (query_seconds != nullptr) {
    query_seconds->clear();
    query_seconds->reserve(n);
  }
  for (size_t c = 0; c < chunks; ++c) {
    for (Result<api::ImputeResponse>& result : parts[c]) {
      results.push_back(std::move(result));
    }
    if (query_seconds != nullptr) {
      query_seconds->insert(query_seconds->end(), part_seconds[c].begin(),
                            part_seconds[c].end());
    }
  }
  return results;
}

std::string Server::MethodsLine(const Json& id) {
  const api::ModelRegistry& registry = api::ModelRegistry::Global();
  Json frame = Json::Object();
  frame.Set("ok", Json::Bool(true));
  Json methods = Json::Array();
  for (const std::string& name : registry.MethodNames()) {
    Json entry = Json::Object();
    entry.Set("name", Json::String(name));
    entry.Set("description", Json::String(registry.Description(name)));
    methods.Append(std::move(entry));
  }
  frame.Set("methods", std::move(methods));
  if (!id.is_null()) frame.Set("id", id);
  return frame.Dump();
}

std::string Server::StatsLine(const Json& id) {
  const api::ModelCache::Stats cache_stats = cache_.stats();
  Json frame = Json::Object();
  frame.Set("ok", Json::Bool(true));
  Json cache = Json::Object();
  cache.Set("budget_bytes",
            Json::Number(static_cast<double>(cache_.byte_budget())));
  cache.Set("cached_bytes",
            Json::Number(static_cast<double>(cache_.SizeBytes())));
  cache.Set("models", Json::Number(static_cast<double>(cache_.num_models())));
  cache.Set("hits", Json::Number(static_cast<double>(cache_stats.hits)));
  cache.Set("misses", Json::Number(static_cast<double>(cache_stats.misses)));
  cache.Set("evictions",
            Json::Number(static_cast<double>(cache_stats.evictions)));
  cache.Set("coalesced",
            Json::Number(static_cast<double>(cache_stats.coalesced)));
  frame.Set("cache", std::move(cache));
  frame.Set("workers", Json::Number(pool_.workers()));
  if (epoch_ != nullptr) {
    const api::EpochPipeline::Stats es = epoch_->stats();
    Json epoch = Json::Object();
    epoch.Set("spec", Json::String(epoch_->spec_string()));
    epoch.Set("epoch", Json::Number(static_cast<double>(es.epoch)));
    // Builder lag: deltas accepted but not yet in the served epoch.
    epoch.Set("pending_trips",
              Json::Number(static_cast<double>(es.pending_trips)));
    epoch.Set("pending_points",
              Json::Number(static_cast<double>(es.pending_points)));
    epoch.Set("ingested_trips",
              Json::Number(static_cast<double>(es.ingested_trips)));
    epoch.Set("rollovers", Json::Number(static_cast<double>(es.rollovers)));
    epoch.Set("epoch_trips",
              Json::Number(static_cast<double>(es.epoch_trips)));
    epoch.Set("building", Json::Bool(es.building));
    epoch.Set("last_build_ms", Json::Number(es.last_build_seconds * 1e3));
    if (!es.last_error.empty()) {
      epoch.Set("last_error", Json::String(es.last_error));
    }
    frame.Set("epoch", std::move(epoch));
  }

  core::MutexLock lock(stats_mu_);
  frame.Set("frames", Json::Number(static_cast<double>(frames_total_)));
  frame.Set("frames_rejected",
            Json::Number(static_cast<double>(frames_rejected_)));
  Json models = Json::Array();
  for (const auto& [spec, stats] : model_stats_) {
    Json entry = Json::Object();
    entry.Set("model", Json::String(spec));
    entry.Set("resolves", Json::Number(static_cast<double>(stats.resolves)));
    entry.Set("queries_ok",
              Json::Number(static_cast<double>(stats.queries_ok)));
    entry.Set("queries_failed",
              Json::Number(static_cast<double>(stats.queries_failed)));
    // Sketch-backed observability: O(1) memory regardless of traffic.
    // latency_count gates the percentiles (an estimate over <5 samples is
    // just those samples); distinct_vessels only counts requests that
    // carried "vessel".
    entry.Set("latency_count",
              Json::Number(static_cast<double>(stats.latency_p50.count())));
    if (stats.latency_p50.count() > 0) {
      entry.Set("latency_p50_ms", Json::Number(stats.latency_p50.Estimate()));
      entry.Set("latency_p99_ms", Json::Number(stats.latency_p99.Estimate()));
    }
    entry.Set("distinct_vessels", Json::Number(stats.vessels.Estimate()));
    models.Append(std::move(entry));
  }
  frame.Set("models", std::move(models));
  if (!id.is_null()) frame.Set("id", id);
  return frame.Dump();
}

void Server::ServeStream(std::istream& in, std::ostream& out) {
  transport_.ServeStream(in, out);
}

}  // namespace habit::server
