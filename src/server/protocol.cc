#include "server/protocol.h"

#include <algorithm>
#include <cmath>

#include "ais/io.h"

namespace habit::server {

namespace {

// The VesselType names the protocol accepts. VesselTypeFromString maps
// unknown strings to kOther, which is exactly the silent-garbage behavior
// a hardened surface must not have — so the protocol validates against
// the round-trip instead.
Result<ais::VesselType> ParseVesselType(const std::string& s) {
  const ais::VesselType t = ais::VesselTypeFromString(s);
  if (t == ais::VesselType::kOther && s != "other") {
    return Status::InvalidArgument("unknown vessel_type '" + s + "'");
  }
  return t;
}

Status FieldError(const char* field, const char* what) {
  return Status::InvalidArgument("request field '" + std::string(field) +
                                 "' " + what);
}

Result<double> GetNumber(const Json& obj, const char* field) {
  const Json* v = obj.Find(field);
  if (v == nullptr) return FieldError(field, "is missing");
  if (!v->is_number()) return FieldError(field, "must be a number");
  return v->number_value();
}

Result<int64_t> GetOptionalInt64(const Json& obj, const char* field,
                                 int64_t default_value) {
  const Json* v = obj.Find(field);
  if (v == nullptr) return default_value;
  if (!v->is_number()) return FieldError(field, "must be a number");
  const double d = v->number_value();
  if (d != std::floor(d) || std::fabs(d) > 9.007199254740992e15) {
    return FieldError(field, "must be an integer");
  }
  return static_cast<int64_t>(d);
}

Status CheckKnownMembers(const Json& obj,
                         std::initializer_list<const char*> known) {
  for (const auto& [key, value] : obj.members()) {
    bool found = false;
    for (const char* k : known) {
      if (key == k) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::string hint;
      for (const char* k : known) {
        hint += hint.empty() ? k : std::string(", ") + k;
      }
      return Status::InvalidArgument("unknown field '" + key +
                                     "' (known: " + hint + ")");
    }
  }
  return Status::OK();
}

Result<geo::LatLng> ParseEndpoint(const Json& obj, const char* field) {
  const Json* v = obj.Find(field);
  if (v == nullptr) return FieldError(field, "is missing");
  if (!v->is_object()) {
    return FieldError(field, "must be an object {\"lat\":..,\"lng\":..}");
  }
  HABIT_RETURN_NOT_OK(CheckKnownMembers(*v, {"lat", "lng"}));
  HABIT_ASSIGN_OR_RETURN(const double lat, GetNumber(*v, "lat"));
  HABIT_ASSIGN_OR_RETURN(const double lng, GetNumber(*v, "lng"));
  return geo::LatLng{lat, lng};
}

Result<api::ImputeRequest> ParseImputeRequest(const Json& obj) {
  if (!obj.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  HABIT_RETURN_NOT_OK(CheckKnownMembers(
      obj,
      {"gap_start", "gap_end", "t_start", "t_end", "vessel_type", "vessel"}));
  api::ImputeRequest request;
  HABIT_ASSIGN_OR_RETURN(request.gap_start, ParseEndpoint(obj, "gap_start"));
  HABIT_ASSIGN_OR_RETURN(request.gap_end, ParseEndpoint(obj, "gap_end"));
  HABIT_ASSIGN_OR_RETURN(request.t_start,
                         GetOptionalInt64(obj, "t_start", 0));
  HABIT_ASSIGN_OR_RETURN(request.t_end, GetOptionalInt64(obj, "t_end", 0));
  if (const Json* vt = obj.Find("vessel_type"); vt != nullptr) {
    if (!vt->is_string()) {
      return FieldError("vessel_type", "must be a string");
    }
    HABIT_ASSIGN_OR_RETURN(const ais::VesselType type,
                           ParseVesselType(vt->string_value()));
    request.vessel_type = type;
  }
  // "vessel" (MMSI) is observability metadata — it feeds the server's
  // distinct-vessel sketch and never reaches a model, so it cannot change
  // imputation output. Still validated strictly: a hardened surface does
  // not accept garbage anywhere.
  if (obj.Find("vessel") != nullptr) {
    HABIT_ASSIGN_OR_RETURN(const int64_t vessel,
                           GetOptionalInt64(obj, "vessel", 0));
    request.vessel_id = vessel;
  }
  return request;
}

// One AIS point of an ingest trip. `ts` must be an integer; `sog`/`cog`
// default to 0 (many feeds omit them). Semantic checks (finite, in
// range, monotonic) live in the epoch pipeline's validator.
Result<ais::AisRecord> ParseTripPoint(const Json& obj) {
  if (!obj.is_object()) {
    return Status::InvalidArgument("must be a JSON object");
  }
  HABIT_RETURN_NOT_OK(
      CheckKnownMembers(obj, {"lat", "lng", "ts", "sog", "cog"}));
  ais::AisRecord record;
  HABIT_ASSIGN_OR_RETURN(record.pos.lat, GetNumber(obj, "lat"));
  HABIT_ASSIGN_OR_RETURN(record.pos.lng, GetNumber(obj, "lng"));
  const Json* ts = obj.Find("ts");
  if (ts == nullptr) return FieldError("ts", "is missing");
  HABIT_ASSIGN_OR_RETURN(record.ts, GetOptionalInt64(obj, "ts", 0));
  if (obj.Find("sog") != nullptr) {
    HABIT_ASSIGN_OR_RETURN(record.sog, GetNumber(obj, "sog"));
  }
  if (obj.Find("cog") != nullptr) {
    HABIT_ASSIGN_OR_RETURN(record.cog, GetNumber(obj, "cog"));
  }
  return record;
}

Result<ais::Trip> ParseTrip(const Json& obj) {
  if (!obj.is_object()) {
    return Status::InvalidArgument("must be a JSON object");
  }
  HABIT_RETURN_NOT_OK(CheckKnownMembers(
      obj, {"trip_id", "mmsi", "vessel_type", "points"}));
  ais::Trip trip;
  const Json* trip_id = obj.Find("trip_id");
  if (trip_id == nullptr) return FieldError("trip_id", "is missing");
  HABIT_ASSIGN_OR_RETURN(trip.trip_id, GetOptionalInt64(obj, "trip_id", 0));
  const Json* mmsi = obj.Find("mmsi");
  if (mmsi == nullptr) return FieldError("mmsi", "is missing");
  HABIT_ASSIGN_OR_RETURN(trip.mmsi, GetOptionalInt64(obj, "mmsi", 0));
  if (const Json* vt = obj.Find("vessel_type"); vt != nullptr) {
    if (!vt->is_string()) {
      return FieldError("vessel_type", "must be a string");
    }
    HABIT_ASSIGN_OR_RETURN(trip.type, ParseVesselType(vt->string_value()));
  }
  const Json* points = obj.Find("points");
  if (points == nullptr || !points->is_array()) {
    return FieldError("points", "must be an array of points");
  }
  trip.points.reserve(points->items().size());
  for (size_t i = 0; i < points->items().size(); ++i) {
    auto point = ParseTripPoint(points->items()[i]);
    if (!point.ok()) {
      return Status::InvalidArgument("points[" + std::to_string(i) +
                                     "]: " + point.status().message());
    }
    ais::AisRecord record = point.MoveValue();
    // Per-record identity mirrors the trip header, the same shape the
    // offline segmentation pipeline produces.
    record.mmsi = trip.mmsi;
    record.type = trip.type;
    trip.points.push_back(std::move(record));
  }
  return trip;
}

}  // namespace

Result<Request> ParseRequest(std::string_view line, size_t max_batch,
                             bool require_model) {
  // Scale the parser's tree cap with the configured batch cap (a request
  // is ~11 JSON values) so an operator raising --max-batch does not make
  // legitimate in-limit frames unparseable; the floor keeps the default
  // expansion-bomb protection.
  const size_t max_values = std::max<size_t>(
      262144, std::min<size_t>(max_batch, 50'000'000) * 20);
  HABIT_ASSIGN_OR_RETURN(const Json frame,
                         Json::Parse(line, /*max_depth=*/64, max_values));
  if (!frame.is_object()) {
    return Status::InvalidArgument("request frame must be a JSON object");
  }
  const Json* op = frame.Find("op");
  if (op == nullptr || !op->is_string()) {
    return Status::InvalidArgument(
        "request frame needs a string \"op\" field");
  }

  Request out;
  if (const Json* id = frame.Find("id"); id != nullptr) {
    if (!id->is_string() && !id->is_number()) {
      return Status::InvalidArgument("\"id\" must be a string or number");
    }
    out.id = *id;
  }

  const std::string& name = op->string_value();
  if (name == "ping" || name == "methods" || name == "stats") {
    HABIT_RETURN_NOT_OK(CheckKnownMembers(frame, {"op", "id"}));
    out.op = name == "ping"      ? Request::Op::kPing
             : name == "methods" ? Request::Op::kMethods
                                 : Request::Op::kStats;
    return out;
  }
  if (name == "rollover") {
    HABIT_RETURN_NOT_OK(CheckKnownMembers(frame, {"op", "id"}));
    out.op = Request::Op::kRollover;
    return out;
  }
  if (name == "ingest") {
    HABIT_RETURN_NOT_OK(CheckKnownMembers(frame, {"op", "id", "trips"}));
    out.op = Request::Op::kIngest;
    const Json* trips = frame.Find("trips");
    if (trips == nullptr || !trips->is_array()) {
      return Status::InvalidArgument("op 'ingest' needs a \"trips\" array");
    }
    if (trips->items().empty()) {
      return Status::InvalidArgument("\"trips\" must not be empty");
    }
    if (trips->items().size() > max_batch) {
      return Status::InvalidArgument(
          "ingest of " + std::to_string(trips->items().size()) +
          " trips exceeds the per-frame limit of " +
          std::to_string(max_batch));
    }
    out.trips.reserve(trips->items().size());
    for (size_t i = 0; i < trips->items().size(); ++i) {
      auto trip = ParseTrip(trips->items()[i]);
      if (!trip.ok()) {
        return Status::InvalidArgument("trips[" + std::to_string(i) +
                                       "]: " + trip.status().message());
      }
      out.trips.push_back(trip.MoveValue());
    }
    return out;
  }
  if (name != "impute" && name != "impute_batch") {
    return Status::InvalidArgument(
        "unknown op '" + name +
        "' (known: ping, methods, stats, impute, impute_batch, ingest, "
        "rollover)");
  }

  const Json* model = frame.Find("model");
  if (model == nullptr || !model->is_string() ||
      model->string_value().empty()) {
    if (require_model || model != nullptr) {
      return Status::InvalidArgument("op '" + name +
                                     "' needs a non-empty string \"model\"");
    }
  } else {
    out.model = model->string_value();
  }

  if (name == "impute") {
    HABIT_RETURN_NOT_OK(
        CheckKnownMembers(frame, {"op", "id", "model", "request"}));
    out.op = Request::Op::kImpute;
    const Json* request = frame.Find("request");
    if (request == nullptr) {
      return Status::InvalidArgument("op 'impute' needs a \"request\"");
    }
    HABIT_ASSIGN_OR_RETURN(api::ImputeRequest parsed,
                           ParseImputeRequest(*request));
    out.requests.push_back(parsed);
    return out;
  }

  HABIT_RETURN_NOT_OK(
      CheckKnownMembers(frame, {"op", "id", "model", "requests"}));
  out.op = Request::Op::kImputeBatch;
  const Json* requests = frame.Find("requests");
  if (requests == nullptr || !requests->is_array()) {
    return Status::InvalidArgument(
        "op 'impute_batch' needs a \"requests\" array");
  }
  if (requests->items().empty()) {
    return Status::InvalidArgument("\"requests\" must not be empty");
  }
  if (requests->items().size() > max_batch) {
    return Status::InvalidArgument(
        "batch of " + std::to_string(requests->items().size()) +
        " requests exceeds the per-frame limit of " +
        std::to_string(max_batch));
  }
  out.requests.reserve(requests->items().size());
  for (size_t i = 0; i < requests->items().size(); ++i) {
    auto parsed = ParseImputeRequest(requests->items()[i]);
    if (!parsed.ok()) {
      return Status::InvalidArgument("requests[" + std::to_string(i) +
                                     "]: " + parsed.status().message());
    }
    out.requests.push_back(parsed.MoveValue());
  }
  return out;
}

Json ImputeRequestToJson(const api::ImputeRequest& request) {
  Json obj = Json::Object();
  Json start = Json::Object();
  start.Set("lat", Json::Number(request.gap_start.lat));
  start.Set("lng", Json::Number(request.gap_start.lng));
  Json end = Json::Object();
  end.Set("lat", Json::Number(request.gap_end.lat));
  end.Set("lng", Json::Number(request.gap_end.lng));
  obj.Set("gap_start", std::move(start));
  obj.Set("gap_end", std::move(end));
  obj.Set("t_start", Json::Number(static_cast<double>(request.t_start)));
  obj.Set("t_end", Json::Number(static_cast<double>(request.t_end)));
  if (request.vessel_type.has_value()) {
    obj.Set("vessel_type",
            Json::String(ais::VesselTypeToString(*request.vessel_type)));
  }
  if (request.vessel_id.has_value()) {
    obj.Set("vessel",
            Json::Number(static_cast<double>(*request.vessel_id)));
  }
  return obj;
}

std::string EncodeImputeRequest(const std::string& model,
                                const api::ImputeRequest& request) {
  Json frame = Json::Object();
  frame.Set("op", Json::String("impute"));
  // Empty model = the router surface (the manifest picks models); the
  // member is omitted entirely because the parser rejects an empty one.
  if (!model.empty()) frame.Set("model", Json::String(model));
  frame.Set("request", ImputeRequestToJson(request));
  return frame.Dump();
}

std::string EncodeImputeBatchRequest(
    const std::string& model, std::span<const api::ImputeRequest> requests) {
  Json frame = Json::Object();
  frame.Set("op", Json::String("impute_batch"));
  if (!model.empty()) frame.Set("model", Json::String(model));
  Json arr = Json::Array();
  for (const api::ImputeRequest& request : requests) {
    arr.Append(ImputeRequestToJson(request));
  }
  frame.Set("requests", std::move(arr));
  return frame.Dump();
}

Json TripToJson(const ais::Trip& trip) {
  Json obj = Json::Object();
  obj.Set("trip_id", Json::Number(static_cast<double>(trip.trip_id)));
  obj.Set("mmsi", Json::Number(static_cast<double>(trip.mmsi)));
  obj.Set("vessel_type", Json::String(ais::VesselTypeToString(trip.type)));
  Json points = Json::Array();
  for (const ais::AisRecord& r : trip.points) {
    Json point = Json::Object();
    point.Set("lat", Json::Number(r.pos.lat));
    point.Set("lng", Json::Number(r.pos.lng));
    point.Set("ts", Json::Number(static_cast<double>(r.ts)));
    point.Set("sog", Json::Number(r.sog));
    point.Set("cog", Json::Number(r.cog));
    points.Append(std::move(point));
  }
  obj.Set("points", std::move(points));
  return obj;
}

std::string EncodeIngestRequest(std::span<const ais::Trip> trips) {
  Json frame = Json::Object();
  frame.Set("op", Json::String("ingest"));
  Json arr = Json::Array();
  for (const ais::Trip& trip : trips) arr.Append(TripToJson(trip));
  frame.Set("trips", std::move(arr));
  return frame.Dump();
}

std::string EncodeRolloverRequest() {
  Json frame = Json::Object();
  frame.Set("op", Json::String("rollover"));
  return frame.Dump();
}

std::string AckResponseLine(const std::string& op, uint64_t epoch,
                            uint64_t accepted, uint64_t pending,
                            const Json& id) {
  Json frame = Json::Object();
  frame.Set("ok", Json::Bool(true));
  frame.Set("op", Json::String(op));
  frame.Set("epoch", Json::Number(static_cast<double>(epoch)));
  frame.Set("accepted", Json::Number(static_cast<double>(accepted)));
  frame.Set("pending", Json::Number(static_cast<double>(pending)));
  if (!id.is_null()) frame.Set("id", id);
  return frame.Dump();
}

namespace {

Json ErrorObject(const Status& status) {
  Json err = Json::Object();
  err.Set("code", Json::String(StatusCodeToString(status.code())));
  err.Set("message", Json::String(status.message()));
  return err;
}

void MaybeEchoId(Json* frame, const Json& id) {
  if (!id.is_null()) frame->Set("id", id);
}

}  // namespace

Json ImputeResultToJson(const Result<api::ImputeResponse>& result) {
  Json obj = Json::Object();
  if (!result.ok()) {
    obj.Set("ok", Json::Bool(false));
    obj.Set("error", ErrorObject(result.status()));
    return obj;
  }
  const api::ImputeResponse& response = result.value();
  obj.Set("ok", Json::Bool(true));
  Json path = Json::Array();
  for (const geo::LatLng& p : response.path) {
    Json point = Json::Array();
    point.Append(Json::Number(p.lat));
    point.Append(Json::Number(p.lng));
    path.Append(std::move(point));
  }
  obj.Set("path", std::move(path));
  Json timestamps = Json::Array();
  for (const int64_t t : response.timestamps) {
    timestamps.Append(Json::Number(static_cast<double>(t)));
  }
  obj.Set("timestamps", std::move(timestamps));
  obj.Set("expanded", Json::Number(static_cast<double>(response.expanded)));
  return obj;
}

std::string ImputeResponseLine(const Result<api::ImputeResponse>& result,
                               const Json& id) {
  Json frame = ImputeResultToJson(result);
  MaybeEchoId(&frame, id);
  return frame.Dump();
}

std::string BatchResponseLine(
    std::span<const Result<api::ImputeResponse>> results, const Json& id) {
  Json frame = Json::Object();
  frame.Set("ok", Json::Bool(true));
  Json arr = Json::Array();
  for (const Result<api::ImputeResponse>& result : results) {
    arr.Append(ImputeResultToJson(result));
  }
  frame.Set("results", std::move(arr));
  MaybeEchoId(&frame, id);
  return frame.Dump();
}

std::string ErrorResponseLine(const Status& status, const Json& id) {
  Json frame = Json::Object();
  frame.Set("ok", Json::Bool(false));
  frame.Set("error", ErrorObject(status));
  MaybeEchoId(&frame, id);
  return frame.Dump();
}

}  // namespace habit::server
