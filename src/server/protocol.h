// The habit_serve line protocol: newline-delimited JSON frames, one
// request line in, one response line out, over TCP or a stdin/stdout
// pipe. Framing and parsing are hardened for network input — every
// malformed frame maps to a structured error response, never to a crash
// or a silently defaulted field.
//
// Requests (one JSON object per line):
//   {"op":"ping"}
//   {"op":"methods"}
//   {"op":"stats"}
//   {"op":"impute","model":"habit:load=/m.snap","request":{
//        "gap_start":{"lat":54.4,"lng":10.2},
//        "gap_end":{"lat":54.5,"lng":10.3},
//        "t_start":0,"t_end":3600,"vessel_type":"cargo"}}
//   {"op":"impute_batch","model":<spec>,"requests":[<request>,...]}
//   {"op":"ingest","trips":[{"trip_id":7,"mmsi":9,"vessel_type":"cargo",
//        "points":[{"lat":54.4,"lng":10.2,"ts":100,"sog":9.5,"cog":45},
//                  ...]},...]}
//   {"op":"rollover"}
//
// `t_start`/`t_end` default to 0 (no time model); `vessel_type` is
// optional and must be one of the ais::VesselType names. Any request may
// carry an "id" (string or number), echoed verbatim in the response so
// clients can pipeline frames over one connection. Unknown fields are
// rejected, not ignored: a typo ("lng" vs "lon") must fail loudly, the
// same contract as MethodSpec::CheckKnownKeys.
//
// `ingest` stages trip deltas for the serving process's epoch pipeline
// and `rollover` forces the next epoch boundary (see api/epoch.h); both
// answer the uniform ack frame
//   {"ok":true,"op":"ingest","epoch":E,"accepted":N,"pending":M}
// (accepted = trips staged by THIS frame, pending = builder backlog,
// epoch = the epoch currently served). Per-point `sog`/`cog` are optional
// and default to 0; `vessel_type` defaults to "other". Trip semantics
// (>= 2 points, strictly increasing timestamps, fresh trip ids) are
// validated by the pipeline, not the parser, so both protocols share one
// validator.
//
// Responses:
//   {"ok":true,...}                          op-specific payload
//   {"ok":false,"error":{"code":"InvalidArgument","message":"..."}}
// Batch responses carry per-query results — a query-level failure
// (e.g. Unreachable) is {"ok":false,...} *inside* "results" while the
// frame itself stays ok:true.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ais/ais.h"
#include "api/imputation_model.h"
#include "core/status.h"
#include "server/json.h"

namespace habit::server {

/// \brief One parsed protocol request.
struct Request {
  enum class Op {
    kPing,
    kMethods,
    kStats,
    kImpute,
    kImputeBatch,
    kIngest,
    kRollover,
  };
  Op op = Op::kPing;
  std::string model;  ///< registry spec string (impute ops only)
  /// The queries: exactly one for kImpute, 1..max_batch for kImputeBatch.
  std::vector<api::ImputeRequest> requests;
  /// The trip deltas (kIngest only): 1..max_batch per frame.
  std::vector<ais::Trip> trips;
  Json id;  ///< client correlation id (echoed); null when absent
};

/// Parses one request frame. `max_batch` bounds the per-frame query count
/// (a single frame must not buffer unbounded work); kInvalidArgument on
/// malformed JSON, unknown ops, missing/mistyped/unknown fields, and
/// oversized batches. With `require_model` false the "model" field of
/// impute ops becomes optional (Request::model stays "") — the shard
/// router's surface, where the manifest picks models and clients cannot:
/// the router rejects frames that DO name one, so a client cannot believe
/// a model choice that was silently overridden was honored.
Result<Request> ParseRequest(std::string_view line, size_t max_batch,
                             bool require_model = true);

/// Serializes one ImputeRequest as a protocol JSON object (client side:
/// bench_serve, tests, and doc examples build frames through this).
Json ImputeRequestToJson(const api::ImputeRequest& request);

/// Builds the full frame for a single-impute / batch request.
std::string EncodeImputeRequest(const std::string& model,
                                const api::ImputeRequest& request);
std::string EncodeImputeBatchRequest(
    const std::string& model, std::span<const api::ImputeRequest> requests);

/// One imputation result as a JSON object: {"ok":true,"path":[[lat,lng],
/// ...],"timestamps":[...],"expanded":n} or {"ok":false,"error":{...}}.
Json ImputeResultToJson(const Result<api::ImputeResponse>& result);

/// The ok:true frame for a single impute (the result object plus echoed
/// id) — a response line, without the trailing newline.
std::string ImputeResponseLine(const Result<api::ImputeResponse>& result,
                               const Json& id);

/// The ok:true frame for a batch: {"ok":true,"results":[...]}. Per-query
/// failures are embedded per-result; the frame itself is ok. Serializing
/// in-process ImputeBatch output through this yields byte-identical lines
/// to the server's — the equivalence the protocol tests assert.
std::string BatchResponseLine(
    std::span<const Result<api::ImputeResponse>> results, const Json& id);

/// One trip delta as a protocol JSON object (the "trips" array element).
Json TripToJson(const ais::Trip& trip);

/// Builds the full frame for an ingest / rollover request (client side:
/// the router's per-shard forwarding, tests, and the CI smokes).
std::string EncodeIngestRequest(std::span<const ais::Trip> trips);
std::string EncodeRolloverRequest();

/// The uniform ok:true ack for ingest/rollover: op name echoed, the
/// served epoch, trips accepted by this frame, and the builder backlog.
/// Rendering binary kAck frames through this yields byte-identical lines
/// to the JSON path's — the same contract the impute encoders keep.
std::string AckResponseLine(const std::string& op, uint64_t epoch,
                            uint64_t accepted, uint64_t pending,
                            const Json& id);

/// The ok:false frame for a frame-level error.
std::string ErrorResponseLine(const Status& status, const Json& id = Json());

}  // namespace habit::server
