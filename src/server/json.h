// Minimal JSON for the line-protocol server: a dynamically typed value,
// a recursive-descent parser hardened for network input (depth cap,
// strict UTF-16 escape handling, full-input consumption, no exceptions),
// and a serializer whose number formatting round-trips doubles exactly
// (shortest form via %.17g re-parse check) — the protocol's bit-identity
// guarantee rides on that.
//
// Scope is deliberately the protocol's needs, not a general library:
// numbers are doubles (integers up to 2^53 are exact, which covers unix
// timestamps), object member order is preserved, duplicate keys are
// rejected (a request must never alias two intents — same rule as
// MethodSpec::Parse).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/status.h"

namespace habit::server {

/// \brief One JSON value (null / bool / number / string / array / object).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  static Json Null() { return Json(); }
  static Json Bool(bool b) {
    Json v;
    v.type_ = Type::kBool;
    v.bool_ = b;
    return v;
  }
  static Json Number(double d) {
    Json v;
    v.type_ = Type::kNumber;
    v.number_ = d;
    return v;
  }
  static Json String(std::string s) {
    Json v;
    v.type_ = Type::kString;
    v.string_ = std::move(s);
    return v;
  }
  static Json Array() {
    Json v;
    v.type_ = Type::kArray;
    return v;
  }
  static Json Object() {
    Json v;
    v.type_ = Type::kObject;
    return v;
  }

  /// Parses exactly one JSON document spanning the whole of `text`
  /// (trailing non-whitespace is an error). kInvalidArgument with a byte
  /// offset on malformed input; nesting deeper than `max_depth` is
  /// rejected rather than recursed into, and documents with more than
  /// `max_values` values are rejected rather than materialized — wire
  /// bytes expand ~50-100x into tree nodes ("[1,1,1,...]" at a 4 MiB
  /// frame cap would otherwise heap ~200 MB per frame), so the parser
  /// caps the tree, not just the bytes. The default comfortably fits a
  /// max-size legitimate batch (4096 requests x ~15 values).
  static Result<Json> Parse(std::string_view text, int max_depth = 64,
                            size_t max_values = 262144);

  /// Compact single-line serialization (never contains a raw newline:
  /// control characters are \u-escaped, so a dumped value is always a
  /// valid protocol frame).
  std::string Dump() const;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<Json>& items() const { return items_; }
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const Json* Find(std::string_view key) const;

  /// Array / object builders.
  void Append(Json v) { items_.push_back(std::move(v)); }
  void Set(std::string key, Json v) {
    members_.emplace_back(std::move(key), std::move(v));
  }

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Serializes a double in the shortest form that re-parses to the same
/// bits (tries %.15g/%.16g/%.17g). Non-finite values (never produced by
/// validated responses) serialize as null per JSON's number grammar.
std::string DumpDouble(double d);

}  // namespace habit::server
