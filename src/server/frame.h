// The binary wire format for the line protocol: length-prefixed
// little-endian frames, negotiated per connection by the first bytes (the
// magic vs. '{'/whitespace — JSON stays the debug/compat surface and is
// byte-identical to the NDJSON protocol). The layout reuses the snapshot
// container's conventions — a u32 magic, u32 payload length, then flat
// little-endian fields; batched gaps travel as SoA arrays with no
// per-request key strings, so a batch of n requests decodes with zero
// JSON parsing and exactly one allocation per column.
//
// Frame:        magic u32 ("HBTF") | length u32 | payload[length]
// Request payload:
//   op u32      1=ping 2=methods 3=stats 4=impute 5=impute_batch 6=json
//               7=ingest 8=rollover
//   id          kind u8 (0 none, 1 number f64, 2 string u32+bytes)
//   op=json:    the raw JSON request line (the escape hatch: anything the
//               structured ops cannot express runs the JSON dispatch path)
//   op=impute / impute_batch:
//     model     u32 length + bytes (registry spec)
//     n u32     query count (1 for impute, 1..max_batch for impute_batch)
//     lat_start f64[n] | lng_start f64[n] | lat_end f64[n] | lng_end f64[n]
//     t_start  i64[n] | t_end i64[n]
//     vessel_type u8[n]   (0xFF = absent, else ais::VesselType value)
//     has_vessel  u8[n]   (0/1)
//     vessel_id  i64[n]   (meaningful where has_vessel=1)
//   op=ingest:
//     n u32     trip count (1..max_batch), then per trip:
//       trip_id i64 | mmsi i64 | vessel_type u8 | points u32
//       lat f64[points] | lng f64[points] | ts i64[points]
//       sog f64[points] | cog f64[points]
//   op=rollover: nothing after the id
// Response payload:
//   tag u32     1=pong 2=results 3=error 4=json 5=ack
//   id          echoed, same encoding as requests
//   tag=error:  code u32 (StatusCode) | message u32+bytes
//   tag=json:   a raw JSON response line (methods/stats responses)
//   tag=results: is_batch u8 | count u32 | per result:
//     ok u8; ok=1: points u32 | (lat f64, lng f64)[points] |
//                  timestamps u32 | t i64[...] | expanded u64
//           ok=0: code u32 | message u32+bytes
//   tag=ack:    op u32 (the request op: 7=ingest 8=rollover) |
//               epoch u64 | accepted u64 | pending u64
//
// Doubles travel bit-exact in both directions and Json::Dump renders the
// shortest round-trip form, so a binary response re-rendered as JSON
// (ResponseToJsonLine) is byte-identical to what the server's JSON path
// would have emitted — the equivalence transport_test asserts.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"
#include "server/protocol.h"

namespace habit::server::frame {

/// Frame magic, "HBTF" in little-endian byte order. The first byte on the
/// wire is 'H' — never '{' or whitespace, which is the whole negotiation
/// rule: a connection whose first bytes match the magic speaks binary,
/// anything else is JSON.
inline constexpr uint32_t kMagic = 0x46544248u;
inline constexpr size_t kHeaderBytes = 8;  ///< magic u32 + length u32

/// \brief One decoded request frame payload: either a structured Request
/// or a raw JSON line (the op=json escape hatch).
struct FrameRequest {
  bool is_json = false;
  std::string json;  ///< the inner request line when is_json
  Request request;   ///< the structured request otherwise
};

/// \brief Response frame kinds (the `tag` field on the wire).
enum class ResponseTag : uint32_t {
  kPong = 1,
  kResults = 2,
  kError = 3,
  kJson = 4,
  kAck = 5,
};

/// \brief One decoded response frame payload.
struct FrameResponse {
  ResponseTag tag = ResponseTag::kError;
  Json id;            ///< echoed correlation id; null when absent
  bool batch = false;  ///< results: impute vs impute_batch shape
  std::vector<Result<api::ImputeResponse>> results;
  Status error;       ///< tag=error payload
  std::string json;   ///< tag=json payload (a full response line)
  /// tag=ack payload (ingest/rollover): the request op acked plus the
  /// pipeline's {epoch, accepted, pending} answer.
  Request::Op ack_op = Request::Op::kRollover;
  uint64_t epoch = 0;
  uint64_t accepted = 0;
  uint64_t pending = 0;
};

/// Encodes one structured request as a complete frame (header included).
std::string EncodeRequestFrame(const Request& request);

/// Wraps a raw JSON request line in an op=json frame.
std::string EncodeJsonRequestFrame(std::string_view line);

/// Decodes a request frame payload (header already stripped by the
/// transport). Mirrors ParseRequest's validation: `max_batch` bounds the
/// query count, `require_model` demands a non-empty model on impute ops.
/// Every malformed payload maps to kInvalidArgument, never a crash.
Result<FrameRequest> DecodeRequestPayload(std::string_view payload,
                                          size_t max_batch,
                                          bool require_model);

/// Encodes the response to a ping.
std::string EncodePongFrame(const Json& id);

/// Encodes a frame-level error response.
std::string EncodeErrorFrame(const Status& status, const Json& id);

/// Wraps a JSON response line (methods/stats output, or the answer to an
/// op=json passthrough) in a tag=json frame.
std::string EncodeJsonResponseFrame(std::string_view json_line);

/// Encodes impute results; `batch` selects the impute vs impute_batch
/// response shape on the way back to JSON.
std::string EncodeResultsFrame(
    std::span<const Result<api::ImputeResponse>> results, const Json& id,
    bool batch);

/// Encodes the ack for an ingest/rollover request (`op` must be kIngest
/// or kRollover — the acked request op travels on the wire so the JSON
/// re-render names the right op).
std::string EncodeAckFrame(Request::Op op, uint64_t epoch, uint64_t accepted,
                           uint64_t pending, const Json& id);

/// Decodes a response frame payload (header already stripped).
Result<FrameResponse> DecodeResponsePayload(std::string_view payload);

/// Re-renders a decoded binary response as the protocol's JSON line —
/// byte-identical to the line the server's JSON path would have produced
/// for the same request (doubles travel bit-exact; Dump is canonical).
std::string ResponseToJsonLine(const FrameResponse& response);

}  // namespace habit::server::frame
