#include "server/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <unordered_set>

namespace habit::server {

namespace {

/// Recursive-descent parser over a string_view. Network-facing: every
/// branch fails closed with a byte offset, nothing throws, and recursion
/// is bounded by max_depth so a frame of 10k '[' cannot blow the stack.
class Parser {
 public:
  Parser(std::string_view text, int max_depth, size_t max_values)
      : text_(text), max_depth_(max_depth), max_values_(max_values) {}

  Result<Json> Run() {
    SkipWs();
    HABIT_ASSIGN_OR_RETURN(Json v, ParseValue(0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<Json> ParseValue(int depth) {
    if (depth > max_depth_) return Error("nesting too deep");
    if (++values_ > max_values_) return Error("document has too many values");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        HABIT_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Json::String(std::move(s));
      }
      case 't':
        if (ConsumeWord("true")) return Json::Bool(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeWord("false")) return Json::Bool(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeWord("null")) return Json::Null();
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<Json> ParseObject(int depth) {
    ++pos_;  // '{'
    Json obj = Json::Object();
    SkipWs();
    if (Consume('}')) return obj;
    // Hash set, not a scan of prior members: a frame packed with distinct
    // keys must parse in O(n), or duplicate detection itself becomes a
    // CPU-exhaustion vector on a network-facing parser.
    std::unordered_set<std::string> seen;
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      HABIT_ASSIGN_OR_RETURN(std::string key, ParseString());
      if (!seen.insert(key).second) {
        return Error("duplicate object key '" + key + "'");
      }
      SkipWs();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWs();
      HABIT_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      obj.Set(std::move(key), std::move(value));
      SkipWs();
      if (Consume('}')) return obj;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Result<Json> ParseArray(int depth) {
    ++pos_;  // '['
    Json arr = Json::Array();
    SkipWs();
    if (Consume(']')) return arr;
    while (true) {
      SkipWs();
      HABIT_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      arr.Append(std::move(value));
      SkipWs();
      if (Consume(']')) return arr;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Result<Json> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    // JSON's number grammar is a subset of strtod's: validate the shape
    // first (strtod alone would accept "inf", "0x10", "1.e"),
    // then let strtod do the conversion on the validated span.
    size_t int_digits = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
      ++int_digits;
    }
    if (int_digits == 0) return Error("invalid number");
    if (int_digits > 1 && text_[start + (text_[start] == '-' ? 1 : 0)] == '0') {
      return Error("leading zero in number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      size_t frac = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++frac;
      }
      if (frac == 0) return Error("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      size_t exp = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++exp;
      }
      if (exp == 0) return Error("digits required in exponent");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    // lint: raw-parse(this IS the JSON number parser; end-pointer checked)
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("invalid number");
    if (!std::isfinite(v)) return Error("number out of range");
    return Json::Number(v);
  }

  // Appends `cp` to `out` as UTF-8 (cp <= 0x10FFFF by construction).
  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp <= 0x7F) {
      out->push_back(static_cast<char>(cp));
    } else if (cp <= 0x7FF) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp <= 0xFFFF) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape");
      }
    }
    pos_ += 4;
    return v;
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) return Error("raw control character in string");
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // '\'
      if (pos_ >= text_.size()) return Error("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          HABIT_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require the paired low surrogate.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired high surrogate");
            }
            pos_ += 2;
            HABIT_ASSIGN_OR_RETURN(const uint32_t lo, ParseHex4());
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(cp, &out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  std::string_view text_;
  int max_depth_;
  size_t max_values_;
  size_t values_ = 0;
  size_t pos_ = 0;
};

void DumpString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(ch);
        }
    }
  }
  out->push_back('"');
}

void DumpValue(const Json& v, std::string* out) {
  switch (v.type()) {
    case Json::Type::kNull:
      *out += "null";
      break;
    case Json::Type::kBool:
      *out += v.bool_value() ? "true" : "false";
      break;
    case Json::Type::kNumber:
      *out += DumpDouble(v.number_value());
      break;
    case Json::Type::kString:
      DumpString(v.string_value(), out);
      break;
    case Json::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& item : v.items()) {
        if (!first) out->push_back(',');
        first = false;
        DumpValue(item, out);
      }
      out->push_back(']');
      break;
    }
    case Json::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.members()) {
        if (!first) out->push_back(',');
        first = false;
        DumpString(key, out);
        out->push_back(':');
        DumpValue(value, out);
      }
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

std::string DumpDouble(double d) {
  if (!std::isfinite(d)) return "null";
  // Integers within the exact-double range print without an exponent or
  // trailing ".0" (timestamps, counters).
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    return buf;
  }
  char buf[40];
  for (const int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, d);
    // lint: raw-parse(round-trip probe of our own snprintf output)
    if (std::strtod(buf, nullptr) == d) break;
  }
  return buf;
}

Result<Json> Json::Parse(std::string_view text, int max_depth,
                         size_t max_values) {
  return Parser(text, max_depth, max_values).Run();
}

std::string Json::Dump() const {
  std::string out;
  DumpValue(*this, &out);
  return out;
}

const Json* Json::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

}  // namespace habit::server
