#include "server/frame.h"

#include <cstring>

#include "ais/ais.h"

namespace habit::server::frame {

namespace {

// Wire op tags. 1..5 and 7..8 mirror Request::Op; 6 is the JSON escape
// hatch.
enum class OpTag : uint32_t {
  kPing = 1,
  kMethods = 2,
  kStats = 3,
  kImpute = 4,
  kImputeBatch = 5,
  kJson = 6,
  kIngest = 7,
  kRollover = 8,
};

constexpr uint8_t kVesselTypeAbsent = 0xFF;

// ---------------------------------------------------------------- writing

class Writer {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { AppendLE(&buf_, v); }
  void U64(uint64_t v) { AppendLE(&buf_, v); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }
  void Raw(std::string_view s) { buf_.append(s.data(), s.size()); }

  /// The complete frame: header (magic + payload length) then payload.
  std::string Frame() const {
    std::string out;
    out.reserve(kHeaderBytes + buf_.size());
    AppendLE(&out, kMagic);
    AppendLE(&out, static_cast<uint32_t>(buf_.size()));
    out += buf_;
    return out;
  }

 private:
  template <typename T>
  static void AppendLE(std::string* out, T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }

  std::string buf_;
};

// ---------------------------------------------------------------- reading

// Bounds-checked little-endian reader over one frame payload. Every read
// fails cleanly past the end — hostile lengths can never over-read.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = static_cast<uint8_t>(data_[off_++]);
    return true;
  }
  bool U32(uint32_t* v) { return ReadLE(v); }
  bool U64(uint64_t* v) { return ReadLE(v); }
  bool I64(int64_t* v) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    *v = static_cast<int64_t>(bits);
    return true;
  }
  bool F64(double* v) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool Str(std::string* s) {
    uint32_t len;
    if (!U32(&len) || remaining() < len) return false;
    s->assign(data_.data() + off_, len);
    off_ += len;
    return true;
  }

  size_t remaining() const { return data_.size() - off_; }
  std::string_view rest() const { return data_.substr(off_); }
  bool Done() const { return off_ == data_.size(); }

 private:
  template <typename T>
  bool ReadLE(T* v) {
    if (remaining() < sizeof(T)) return false;
    T out = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      out |= static_cast<T>(static_cast<uint8_t>(data_[off_ + i]))
             << (8 * i);
    }
    off_ += sizeof(T);
    *v = out;
    return true;
  }

  std::string_view data_;
  size_t off_ = 0;
};

Status Truncated() {
  return Status::InvalidArgument("binary frame payload truncated");
}

// ------------------------------------------------------------------- ids

void PutId(Writer* w, const Json& id) {
  if (id.is_null()) {
    w->U8(0);
  } else if (id.is_number()) {
    w->U8(1);
    w->F64(id.number_value());
  } else {
    w->U8(2);
    w->Str(id.string_value());
  }
}

Result<Json> GetId(Reader* r) {
  uint8_t kind;
  if (!r->U8(&kind)) return Truncated();
  switch (kind) {
    case 0:
      return Json::Null();
    case 1: {
      double v;
      if (!r->F64(&v)) return Truncated();
      return Json::Number(v);
    }
    case 2: {
      std::string s;
      if (!r->Str(&s)) return Truncated();
      return Json::String(std::move(s));
    }
    default:
      return Status::InvalidArgument("bad id kind " + std::to_string(kind));
  }
}

}  // namespace

// -------------------------------------------------------------- requests

std::string EncodeRequestFrame(const Request& request) {
  Writer w;
  OpTag tag = OpTag::kPing;
  switch (request.op) {
    case Request::Op::kPing:
      tag = OpTag::kPing;
      break;
    case Request::Op::kMethods:
      tag = OpTag::kMethods;
      break;
    case Request::Op::kStats:
      tag = OpTag::kStats;
      break;
    case Request::Op::kImpute:
      tag = OpTag::kImpute;
      break;
    case Request::Op::kImputeBatch:
      tag = OpTag::kImputeBatch;
      break;
    case Request::Op::kIngest:
      tag = OpTag::kIngest;
      break;
    case Request::Op::kRollover:
      tag = OpTag::kRollover;
      break;
  }
  w.U32(static_cast<uint32_t>(tag));
  PutId(&w, request.id);
  if (request.op == Request::Op::kImpute ||
      request.op == Request::Op::kImputeBatch) {
    w.Str(request.model);
    const std::span<const api::ImputeRequest> qs = request.requests;
    w.U32(static_cast<uint32_t>(qs.size()));
    // SoA columns: one pass per field keeps the layout flat and the
    // decode a straight column fill — no per-request key strings.
    for (const auto& q : qs) w.F64(q.gap_start.lat);
    for (const auto& q : qs) w.F64(q.gap_start.lng);
    for (const auto& q : qs) w.F64(q.gap_end.lat);
    for (const auto& q : qs) w.F64(q.gap_end.lng);
    for (const auto& q : qs) w.I64(q.t_start);
    for (const auto& q : qs) w.I64(q.t_end);
    for (const auto& q : qs) {
      w.U8(q.vessel_type.has_value()
               ? static_cast<uint8_t>(*q.vessel_type)
               : kVesselTypeAbsent);
    }
    for (const auto& q : qs) w.U8(q.vessel_id.has_value() ? 1 : 0);
    for (const auto& q : qs) w.I64(q.vessel_id.value_or(0));
  }
  if (request.op == Request::Op::kIngest) {
    w.U32(static_cast<uint32_t>(request.trips.size()));
    for (const ais::Trip& trip : request.trips) {
      w.I64(trip.trip_id);
      w.I64(trip.mmsi);
      w.U8(static_cast<uint8_t>(trip.type));
      w.U32(static_cast<uint32_t>(trip.points.size()));
      // Per-trip SoA point columns, same discipline as the impute block.
      for (const auto& p : trip.points) w.F64(p.pos.lat);
      for (const auto& p : trip.points) w.F64(p.pos.lng);
      for (const auto& p : trip.points) w.I64(p.ts);
      for (const auto& p : trip.points) w.F64(p.sog);
      for (const auto& p : trip.points) w.F64(p.cog);
    }
  }
  return w.Frame();
}

std::string EncodeJsonRequestFrame(std::string_view line) {
  Writer w;
  w.U32(static_cast<uint32_t>(OpTag::kJson));
  w.U8(0);  // id lives inside the JSON line
  w.Raw(line);
  return w.Frame();
}

Result<FrameRequest> DecodeRequestPayload(std::string_view payload,
                                          size_t max_batch,
                                          bool require_model) {
  Reader r(payload);
  uint32_t op_raw;
  if (!r.U32(&op_raw)) return Truncated();
  const OpTag tag = static_cast<OpTag>(op_raw);
  FrameRequest out;
  if (tag == OpTag::kJson) {
    uint8_t id_kind;
    if (!r.U8(&id_kind) || id_kind != 0) {
      return Status::InvalidArgument(
          "op=json frames carry their id inside the JSON line");
    }
    out.is_json = true;
    out.json = std::string(r.rest());
    return out;
  }

  HABIT_ASSIGN_OR_RETURN(out.request.id, GetId(&r));
  switch (tag) {
    case OpTag::kPing:
      out.request.op = Request::Op::kPing;
      break;
    case OpTag::kMethods:
      out.request.op = Request::Op::kMethods;
      break;
    case OpTag::kStats:
      out.request.op = Request::Op::kStats;
      break;
    case OpTag::kImpute:
      out.request.op = Request::Op::kImpute;
      break;
    case OpTag::kImputeBatch:
      out.request.op = Request::Op::kImputeBatch;
      break;
    case OpTag::kIngest:
      out.request.op = Request::Op::kIngest;
      break;
    case OpTag::kRollover:
      out.request.op = Request::Op::kRollover;
      break;
    default:
      return Status::InvalidArgument("unknown binary op tag " +
                                     std::to_string(op_raw));
  }
  if (tag == OpTag::kIngest) {
    uint32_t n_trips;
    if (!r.U32(&n_trips)) return Truncated();
    if (n_trips == 0) {
      return Status::InvalidArgument("\"trips\" must not be empty");
    }
    if (n_trips > max_batch) {
      return Status::InvalidArgument(
          "ingest of " + std::to_string(n_trips) +
          " trips exceeds the per-frame limit of " +
          std::to_string(max_batch));
    }
    out.request.trips.reserve(n_trips);
    for (uint32_t t = 0; t < n_trips; ++t) {
      ais::Trip trip;
      uint8_t type_raw;
      uint32_t points;
      if (!r.I64(&trip.trip_id) || !r.I64(&trip.mmsi) || !r.U8(&type_raw) ||
          !r.U32(&points)) {
        return Truncated();
      }
      if (type_raw > static_cast<uint8_t>(ais::VesselType::kOther)) {
        return Status::InvalidArgument("trips[" + std::to_string(t) +
                                       "]: unknown vessel_type value " +
                                       std::to_string(type_raw));
      }
      trip.type = static_cast<ais::VesselType>(type_raw);
      // Five 8-byte columns per point; the bound rejects hostile counts
      // before the resize, and the column reads below fail cleanly on a
      // merely short payload.
      if (points > r.remaining() / (5 * 8)) return Truncated();
      trip.points.resize(points);
      for (auto& p : trip.points) (void)r.F64(&p.pos.lat);
      for (auto& p : trip.points) (void)r.F64(&p.pos.lng);
      for (auto& p : trip.points) (void)r.I64(&p.ts);
      for (auto& p : trip.points) (void)r.F64(&p.sog);
      for (auto& p : trip.points) {
        if (!r.F64(&p.cog)) return Truncated();
      }
      for (auto& p : trip.points) {
        p.mmsi = trip.mmsi;
        p.type = trip.type;
      }
      out.request.trips.push_back(std::move(trip));
    }
    if (!r.Done()) {
      return Status::InvalidArgument("trailing bytes after binary frame");
    }
    return out;
  }
  if (tag != OpTag::kImpute && tag != OpTag::kImputeBatch) {
    if (!r.Done()) {
      return Status::InvalidArgument("trailing bytes after binary frame");
    }
    return out;
  }

  const char* op_name = tag == OpTag::kImpute ? "impute" : "impute_batch";
  if (!r.Str(&out.request.model)) return Truncated();
  if (out.request.model.empty() && require_model) {
    return Status::InvalidArgument(std::string("op '") + op_name +
                                   "' needs a non-empty string \"model\"");
  }
  uint32_t n;
  if (!r.U32(&n)) return Truncated();
  if (n == 0) {
    return Status::InvalidArgument("\"requests\" must not be empty");
  }
  if (tag == OpTag::kImpute && n != 1) {
    return Status::InvalidArgument(
        "op 'impute' carries exactly one request (got " +
        std::to_string(n) + ")");
  }
  if (n > max_batch) {
    return Status::InvalidArgument(
        "batch of " + std::to_string(n) +
        " requests exceeds the per-frame limit of " +
        std::to_string(max_batch));
  }
  // The SoA block has a fixed per-request width; an exact size check up
  // front rejects truncated or padded frames before any column is read.
  const size_t need = static_cast<size_t>(n) * (6 * 8 + 1 + 1 + 8);
  if (r.remaining() != need) {
    return Status::InvalidArgument(
        "binary impute payload is " + std::to_string(r.remaining()) +
        " bytes, expected " + std::to_string(need) + " for " +
        std::to_string(n) + " requests");
  }
  std::vector<api::ImputeRequest>& qs = out.request.requests;
  qs.resize(n);
  for (auto& q : qs) (void)r.F64(&q.gap_start.lat);
  for (auto& q : qs) (void)r.F64(&q.gap_start.lng);
  for (auto& q : qs) (void)r.F64(&q.gap_end.lat);
  for (auto& q : qs) (void)r.F64(&q.gap_end.lng);
  for (auto& q : qs) (void)r.I64(&q.t_start);
  for (auto& q : qs) (void)r.I64(&q.t_end);
  for (size_t i = 0; i < n; ++i) {
    uint8_t vt = kVesselTypeAbsent;
    (void)r.U8(&vt);
    if (vt == kVesselTypeAbsent) continue;
    if (vt > static_cast<uint8_t>(ais::VesselType::kOther)) {
      return Status::InvalidArgument("requests[" + std::to_string(i) +
                                     "]: unknown vessel_type value " +
                                     std::to_string(vt));
    }
    qs[i].vessel_type = static_cast<ais::VesselType>(vt);
  }
  std::vector<uint8_t> has_vessel(n);
  for (size_t i = 0; i < n; ++i) {
    (void)r.U8(&has_vessel[i]);
    if (has_vessel[i] > 1) {
      return Status::InvalidArgument("requests[" + std::to_string(i) +
                                     "]: bad has_vessel flag");
    }
  }
  for (size_t i = 0; i < n; ++i) {
    int64_t vessel = 0;
    (void)r.I64(&vessel);
    if (has_vessel[i] != 0) qs[i].vessel_id = vessel;
  }
  return out;
}

// ------------------------------------------------------------- responses

std::string EncodePongFrame(const Json& id) {
  Writer w;
  w.U32(static_cast<uint32_t>(ResponseTag::kPong));
  PutId(&w, id);
  return w.Frame();
}

std::string EncodeErrorFrame(const Status& status, const Json& id) {
  Writer w;
  w.U32(static_cast<uint32_t>(ResponseTag::kError));
  PutId(&w, id);
  w.U32(static_cast<uint32_t>(status.code()));
  w.Str(status.message());
  return w.Frame();
}

std::string EncodeJsonResponseFrame(std::string_view json_line) {
  Writer w;
  w.U32(static_cast<uint32_t>(ResponseTag::kJson));
  w.U8(0);  // id lives inside the JSON line
  w.Raw(json_line);
  return w.Frame();
}

std::string EncodeResultsFrame(
    std::span<const Result<api::ImputeResponse>> results, const Json& id,
    bool batch) {
  Writer w;
  w.U32(static_cast<uint32_t>(ResponseTag::kResults));
  PutId(&w, id);
  w.U8(batch ? 1 : 0);
  w.U32(static_cast<uint32_t>(results.size()));
  for (const Result<api::ImputeResponse>& result : results) {
    if (!result.ok()) {
      w.U8(0);
      w.U32(static_cast<uint32_t>(result.status().code()));
      w.Str(result.status().message());
      continue;
    }
    const api::ImputeResponse& response = result.value();
    w.U8(1);
    w.U32(static_cast<uint32_t>(response.path.size()));
    for (const geo::LatLng& p : response.path) {
      w.F64(p.lat);
      w.F64(p.lng);
    }
    w.U32(static_cast<uint32_t>(response.timestamps.size()));
    for (const int64_t t : response.timestamps) w.I64(t);
    w.U64(static_cast<uint64_t>(response.expanded));
  }
  return w.Frame();
}

std::string EncodeAckFrame(Request::Op op, uint64_t epoch, uint64_t accepted,
                           uint64_t pending, const Json& id) {
  Writer w;
  w.U32(static_cast<uint32_t>(ResponseTag::kAck));
  PutId(&w, id);
  w.U32(static_cast<uint32_t>(op == Request::Op::kIngest ? OpTag::kIngest
                                                         : OpTag::kRollover));
  w.U64(epoch);
  w.U64(accepted);
  w.U64(pending);
  return w.Frame();
}

namespace {

// Status codes cross the wire as their enum value; anything out of range
// (a newer peer, corruption) degrades to kInternal rather than aliasing
// onto a meaningful code.
StatusCode CodeFromWire(uint32_t raw) {
  if (raw == 0 || raw > static_cast<uint32_t>(StatusCode::kInternal)) {
    return StatusCode::kInternal;
  }
  return static_cast<StatusCode>(raw);
}

}  // namespace

Result<FrameResponse> DecodeResponsePayload(std::string_view payload) {
  Reader r(payload);
  uint32_t tag_raw;
  if (!r.U32(&tag_raw)) return Truncated();
  FrameResponse out;
  out.tag = static_cast<ResponseTag>(tag_raw);
  switch (out.tag) {
    case ResponseTag::kJson: {
      uint8_t id_kind;
      if (!r.U8(&id_kind) || id_kind != 0) {
        return Status::InvalidArgument("bad json response frame");
      }
      out.json = std::string(r.rest());
      return out;
    }
    case ResponseTag::kPong: {
      HABIT_ASSIGN_OR_RETURN(out.id, GetId(&r));
      if (!r.Done()) {
        return Status::InvalidArgument("trailing bytes after pong frame");
      }
      return out;
    }
    case ResponseTag::kError: {
      HABIT_ASSIGN_OR_RETURN(out.id, GetId(&r));
      uint32_t code;
      std::string message;
      if (!r.U32(&code) || !r.Str(&message)) return Truncated();
      out.error = Status(CodeFromWire(code), std::move(message));
      return out;
    }
    case ResponseTag::kAck: {
      HABIT_ASSIGN_OR_RETURN(out.id, GetId(&r));
      uint32_t op_raw;
      if (!r.U32(&op_raw) || !r.U64(&out.epoch) || !r.U64(&out.accepted) ||
          !r.U64(&out.pending)) {
        return Truncated();
      }
      if (op_raw == static_cast<uint32_t>(OpTag::kIngest)) {
        out.ack_op = Request::Op::kIngest;
      } else if (op_raw == static_cast<uint32_t>(OpTag::kRollover)) {
        out.ack_op = Request::Op::kRollover;
      } else {
        return Status::InvalidArgument("bad ack op " +
                                       std::to_string(op_raw));
      }
      if (!r.Done()) {
        return Status::InvalidArgument("trailing bytes after ack frame");
      }
      return out;
    }
    case ResponseTag::kResults:
      break;
    default:
      return Status::InvalidArgument("unknown response tag " +
                                     std::to_string(tag_raw));
  }

  HABIT_ASSIGN_OR_RETURN(out.id, GetId(&r));
  uint8_t is_batch;
  uint32_t count;
  if (!r.U8(&is_batch) || !r.U32(&count)) return Truncated();
  out.batch = is_batch != 0;
  // Each result is at least 5 bytes; a hostile count cannot force a large
  // reservation past what the payload itself could hold.
  if (count > r.remaining() / 5 + 1) return Truncated();
  out.results.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t ok;
    if (!r.U8(&ok)) return Truncated();
    if (ok == 0) {
      uint32_t code;
      std::string message;
      if (!r.U32(&code) || !r.Str(&message)) return Truncated();
      out.results.emplace_back(Status(CodeFromWire(code),
                                      std::move(message)));
      continue;
    }
    api::ImputeResponse response;
    uint32_t points;
    if (!r.U32(&points)) return Truncated();
    if (points > r.remaining() / 16) return Truncated();
    response.path.reserve(points);
    for (uint32_t p = 0; p < points; ++p) {
      geo::LatLng ll;
      if (!r.F64(&ll.lat) || !r.F64(&ll.lng)) return Truncated();
      response.path.push_back(ll);
    }
    uint32_t n_ts;
    if (!r.U32(&n_ts)) return Truncated();
    if (n_ts > r.remaining() / 8) return Truncated();
    response.timestamps.reserve(n_ts);
    for (uint32_t t = 0; t < n_ts; ++t) {
      int64_t ts;
      if (!r.I64(&ts)) return Truncated();
      response.timestamps.push_back(ts);
    }
    uint64_t expanded;
    if (!r.U64(&expanded)) return Truncated();
    response.expanded = static_cast<size_t>(expanded);
    out.results.emplace_back(std::move(response));
  }
  if (!r.Done()) {
    return Status::InvalidArgument("trailing bytes after results frame");
  }
  return out;
}

std::string ResponseToJsonLine(const FrameResponse& response) {
  switch (response.tag) {
    case ResponseTag::kPong: {
      // Identical construction to the server's JSON ping path.
      Json frame = Json::Object();
      frame.Set("ok", Json::Bool(true));
      frame.Set("op", Json::String("ping"));
      if (!response.id.is_null()) frame.Set("id", response.id);
      return frame.Dump();
    }
    case ResponseTag::kError:
      return ErrorResponseLine(response.error, response.id);
    case ResponseTag::kJson:
      return response.json;
    case ResponseTag::kAck:
      // Identical construction to the server's JSON ingest/rollover path.
      return AckResponseLine(
          response.ack_op == Request::Op::kIngest ? "ingest" : "rollover",
          response.epoch, response.accepted, response.pending, response.id);
    case ResponseTag::kResults:
      if (!response.batch) {
        if (response.results.size() != 1) {
          return ErrorResponseLine(
              Status::Internal("malformed single-impute results frame"),
              response.id);
        }
        return ImputeResponseLine(response.results.front(), response.id);
      }
      return BatchResponseLine(response.results, response.id);
  }
  return ErrorResponseLine(Status::Internal("unhandled response tag"),
                           Json());
}

}  // namespace habit::server::frame
