// The wire transport layer, factored out of server::Server so every
// frame-serving frontend in the repo — habit_serve's model server and
// habit_route's shard router — shares ONE hardened implementation of
// framing, event loop, connection draining, and oversized-frame policy.
//
// A LineTransport is a dumb byte shuttle: it owns the sockets and the
// framing (newline-delimited JSON, and — when hooks.handle_frame is set —
// the length-prefixed binary protocol from server/frame.h, negotiated per
// connection by the first bytes), and delegates every complete frame to
// the handler hooks. Two transports share one dispatch path:
//   * loopback TCP served by a single epoll event loop (level-triggered,
//     non-blocking fds, per-connection read/write buffers) — idle
//     connections cost one fd and a small struct, never a thread; and
//   * a stdin/stdout pipe mode (ServeStream) so tests and CI need no
//     sockets.
//
// Concurrency model: all per-connection state lives on the event-loop
// thread and is never touched by another thread. Frame handling runs via
// hooks.submit (the worker pool); the ONLY cross-thread state is the
// completion queue (ready_/in_flight_, GUARDED_BY mu_) plus an eventfd
// that wakes the loop when a response is ready. One frame per connection
// is in flight at a time, so responses come back in request order.
// Responses queue as discrete buffers and flush with one gathered write
// (sendmsg) per attempt — a pipelined client's burst of responses costs
// one syscall, not one send(2) each. Reading is disarmed while a frame is
// being handled or the unflushed response tail exceeds the frame cap,
// which bounds both buffers (backpressure instead of memory).
//
// The oversized-frame rule is deterministic and shared by every mode: any
// frame past max_line_bytes — terminated or not — is answered exactly
// once and the connection (or stream) stops. Terminated oversized JSON
// lines flow through the normal handler (which applies its own cap); an
// unterminated frame already past the cap — or a binary frame whose
// declared length exceeds it — can never become valid, so the transport
// answers with hooks.oversize()/hooks.frame_error() and hangs up rather
// than buffering unboundedly.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"
#include "core/sync.h"
#include "core/thread_annotations.h"

namespace habit::server {

/// \brief The frontend-specific pieces of a frame server.
struct TransportHooks {
  /// The whole JSON request path: one frame in (newline stripped), one
  /// response line out (no trailing newline). Must be thread-safe — the
  /// transport calls it from worker threads (or the loop thread when no
  /// submit hook is installed).
  std::function<std::string(std::string_view line)> handle;
  /// The binary request path: one frame payload in (header stripped), one
  /// complete encoded response frame out. Non-null enables the binary
  /// protocol — connections whose first bytes match frame::kMagic are
  /// served binary, everything else stays JSON.
  std::function<std::string(std::string_view payload)> handle_frame;
  /// Builds the response line for an unterminated JSON frame that
  /// overflowed max_line_bytes (the callee counts it in its own stats).
  std::function<std::string()> oversize;
  /// Builds the encoded binary error frame for a framing-level violation
  /// (oversized declared length, bad magic); the callee counts it.
  std::function<std::string(const Status& error)> frame_error;
  /// Runs one frame-handling closure asynchronously (the worker pool).
  /// Non-OK (pool shut down) makes the transport run the closure inline.
  /// Null runs every frame inline on the event-loop thread.
  std::function<Status(std::function<void()> work)> submit;
};

/// \brief Shared wire transport: epoll event loop + pipe mode.
class LineTransport {
 public:
  LineTransport(size_t max_line_bytes, TransportHooks hooks);

  /// Drains the event loop and in-flight frames before destruction.
  ~LineTransport();

  LineTransport(const LineTransport&) = delete;
  LineTransport& operator=(const LineTransport&) = delete;

  /// Serves newline-delimited frames from `in` to `out` until EOF (the
  /// --stdin pipe mode; also the easiest harness for tests). Frames per
  /// character so each frame is answered the moment its newline arrives
  /// on a still-open pipe. JSON only — binary framing needs a socket.
  void ServeStream(std::istream& in, std::ostream& out);

  /// Binds a loopback TCP listener. Port 0 picks an ephemeral port
  /// (bound_port() reports it).
  Status Listen(uint16_t port);
  uint16_t bound_port() const { return bound_port_; }

  /// The listening socket (-1 before Listen).
  int listen_fd() const { return listen_fd_; }

  /// Stop eventfd: writing any value stops Serve(). write(2) is
  /// async-signal-safe, so THIS is how a signal handler stops the loop
  /// (shutdown(2) on the listener does not reliably wake epoll).
  int stop_fd() const { return stop_fd_; }

  /// The event loop: accepts, reads frames, dispatches them through
  /// hooks.submit, and writes responses back with EPOLLOUT backpressure.
  /// Returns after Shutdown() (or a stop_fd() write) once every
  /// connection fd is closed and every in-flight frame has drained.
  Status Serve() EXCLUDES(mu_);

  /// Stops Serve() by waking the event loop; it closes the listener and
  /// every connection. Safe to call from any thread, any number of times.
  void Shutdown();

 private:
  struct Conn;        // per-connection state, event-loop thread only
  struct Completion;  // a handled frame's response, crossing back
  class Loop;         // the epoll loop body (lives in transport.cc)
  friend class Loop;

  size_t max_line_bytes_;
  TransportHooks hooks_;

  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;      ///< written by Listen() before Serve() runs
  int wake_fd_ = -1;  ///< eventfd: a completion is ready (ctor-created)
  int stop_fd_ = -1;  ///< eventfd: stop serving (ctor-created)
  uint16_t bound_port_ = 0;  ///< written by Listen() before Serve() runs

  /// Guards the loop/worker handoff: workers push completions and
  /// decrement in_flight_; the loop swaps ready_ out; Serve() and the
  /// destructor wait for in_flight_ to drain and serving_ to drop.
  core::Mutex mu_;
  core::CondVar cv_;  ///< signaled as frames complete and Serve() exits
  bool serving_ GUARDED_BY(mu_) = false;
  size_t in_flight_ GUARDED_BY(mu_) = 0;
  std::vector<Completion> ready_ GUARDED_BY(mu_);
};

}  // namespace habit::server
