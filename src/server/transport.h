// The line-protocol transport layer, factored out of server::Server so
// every line-serving frontend in the repo — habit_serve's model server
// and habit_route's shard router — shares ONE hardened implementation of
// framing, accept-loop, connection draining, and oversized-frame policy.
//
// A LineTransport is a dumb byte shuttle: it owns the sockets and the
// newline framing, and delegates every complete frame to the handler
// hook. Two transports share one dispatch path:
//   * loopback TCP (thread per connection, detached but counted), and
//   * a stdin/stdout pipe mode (ServeStream) so tests and CI need no
//     sockets.
//
// The oversized-frame rule is deterministic and shared by both: any frame
// past max_line_bytes — terminated or not — is answered exactly once and
// the connection (or stream) stops. Terminated oversized lines flow
// through the normal handler (which applies its own cap); an unterminated
// frame already past the cap can never become a valid line, so the
// transport answers with hooks.oversize() and hangs up rather than
// buffering unboundedly.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"
#include "core/sync.h"
#include "core/thread_annotations.h"

namespace habit::server {

/// \brief The frontend-specific pieces of a line server.
struct TransportHooks {
  /// The whole request path: one frame in (newline stripped), one
  /// response line out (no trailing newline). Must be thread-safe — the
  /// TCP transport calls it from one thread per connection.
  std::function<std::string(std::string_view line)> handle;
  /// Builds the response line for an unterminated frame that overflowed
  /// max_line_bytes (the callee counts it in its own stats).
  std::function<std::string()> oversize;
};

/// \brief Shared line-protocol transport: TCP accept loop + pipe mode.
class LineTransport {
 public:
  LineTransport(size_t max_line_bytes, TransportHooks hooks);

  /// Drains connections (Shutdown + wait) before destruction.
  ~LineTransport();

  LineTransport(const LineTransport&) = delete;
  LineTransport& operator=(const LineTransport&) = delete;

  /// Serves newline-delimited frames from `in` to `out` until EOF (the
  /// --stdin pipe mode; also the easiest harness for tests). Frames per
  /// character so each frame is answered the moment its newline arrives
  /// on a still-open pipe.
  void ServeStream(std::istream& in, std::ostream& out);

  /// Binds a loopback TCP listener. Port 0 picks an ephemeral port
  /// (bound_port() reports it).
  Status Listen(uint16_t port);
  uint16_t bound_port() const { return bound_port_; }

  /// The listening socket (-1 before Listen). Exposed so a signal handler
  /// can shutdown(2) it — the only async-signal-safe way to stop Serve().
  int listen_fd() const { return listen_fd_; }

  /// Accept loop: one detached thread per connection, each reading frames
  /// and writing responses until the peer closes (connections are
  /// counted, not kept joinable — 100k short-lived clients must not
  /// accumulate 100k dead thread stacks). Transient fd exhaustion
  /// (EMFILE/ENFILE) backs off and retries. Returns after Shutdown()
  /// once every connection has drained.
  Status Serve() EXCLUDES(conn_mu_);

  /// Stops Serve(): shuts down the listener and every connection socket,
  /// waking their threads. Safe to call from any thread.
  void Shutdown() EXCLUDES(conn_mu_);

 private:
  void ServeConnection(int fd) EXCLUDES(conn_mu_);

  size_t max_line_bytes_;
  TransportHooks hooks_;

  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;      ///< written by Listen() before Serve() runs
  uint16_t bound_port_ = 0;  ///< written by Listen() before Serve() runs
  /// Guards the connection registry: the accept loop registers fds,
  /// detached connection threads deregister and decrement, Shutdown
  /// iterates, and Serve()/the destructor wait for the count to drain.
  core::Mutex conn_mu_;
  core::CondVar conn_cv_;  ///< signaled as connections drain
  size_t active_conns_ GUARDED_BY(conn_mu_) = 0;
  std::vector<int> conn_fds_ GUARDED_BY(conn_mu_);
};

}  // namespace habit::server
