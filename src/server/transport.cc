#include "server/transport.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <istream>
#include <memory>
#include <ostream>
#include <unordered_map>
#include <utility>

#include "server/frame.h"

namespace habit::server {

// A handled frame's response, crossing from a worker back to the loop.
// The shared_ptr (not the fd) identifies the connection, so a recycled fd
// number can never deliver a stale response to a new connection.
struct LineTransport::Completion {
  std::shared_ptr<Conn> conn;
  std::string response;
};

// Per-connection state. Owned by the event-loop thread exclusively: no
// other thread reads or writes a Conn (workers only carry the shared_ptr
// through the completion queue), so none of this needs a mutex — the
// loop/worker handoff is the GUARDED_BY state on LineTransport itself.
struct LineTransport::Conn {
  enum class Mode { kUndecided, kJson, kBinary };

  int fd = -1;
  Mode mode = Mode::kUndecided;
  std::string in;  ///< unprocessed request bytes
  /// Unflushed response buffers, FIFO. Each response is queued by move —
  /// never copied into one accumulating string — and the whole backlog
  /// flushes with a single gathered write per attempt, so a pipelined
  /// client's burst of responses costs one syscall, not one send(2) each.
  std::deque<std::string> out;
  size_t out_off = 0;    ///< bytes of out.front() already sent
  size_t out_bytes = 0;  ///< total unflushed bytes across `out`
  bool busy = false;  ///< one frame in flight on the worker pool
  bool eof = false;   ///< peer half-closed its write side
  bool close_after_flush = false;  ///< hang up once `out` drains
  bool hangup = false;  ///< peer vanished while a frame was in flight
  bool registered = false;  ///< fd currently in the epoll set
  uint32_t armed = 0;       ///< epoll interest mask currently armed
};

namespace {

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void DrainEventFd(int fd) {
  uint64_t value;
  // lint: socket-io(eventfd drain, not socket IO)
  while (::read(fd, &value, sizeof(value)) > 0) {
  }
}

/// Gathered-flush fan-in cap per sendmsg(2) call — far below IOV_MAX
/// (1024 on Linux); a backlog deeper than this just takes another loop
/// iteration.
constexpr size_t kFlushIovMax = 64;

}  // namespace

// The epoll loop body. Lives entirely on the Serve() thread; holds the
// loop-private state (epoll fd, fd -> Conn map) and reaches into the
// owning transport only for hooks, limits, and the guarded completion
// queue.
class LineTransport::Loop {
 public:
  explicit Loop(LineTransport* t) : t_(t) {}

  Status Run() {
    ep_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (ep_ < 0) {
      return Status::IoError(std::string("epoll_create1: ") +
                             std::strerror(errno));
    }
    SetNonBlocking(t_->listen_fd_);
    Status status = Status::OK();
    if (!Add(t_->listen_fd_) || !Add(t_->wake_fd_) || !Add(t_->stop_fd_)) {
      status = Status::IoError(std::string("epoll_ctl: ") +
                               std::strerror(errno));
      stop_ = true;
    }
    epoll_event events[128];
    while (!stop_ && !t_->stopping_.load(std::memory_order_relaxed)) {
      // accept() backoff under fd exhaustion: poll again shortly instead
      // of spinning on the level-triggered listener readiness.
      const int timeout_ms = backoff_ ? 50 : -1;
      backoff_ = false;
      const int n = ::epoll_wait(ep_, events, 128, timeout_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        status = Status::IoError(std::string("epoll_wait: ") +
                                 std::strerror(errno));
        break;
      }
      if (n == 0) {
        Accept();
        continue;
      }
      for (int i = 0; i < n && !stop_; ++i) {
        const int fd = events[i].data.fd;
        const uint32_t ev = events[i].events;
        if (fd == t_->stop_fd_) {
          DrainEventFd(fd);
          stop_ = true;
        } else if (fd == t_->wake_fd_) {
          DrainEventFd(fd);
          ProcessCompletions();
        } else if (fd == t_->listen_fd_) {
          Accept();
        } else {
          OnConnEvent(fd, ev);
        }
      }
    }
    // Teardown: close every connection fd (in-flight responses have
    // nowhere to go; Serve() discards their completions while draining).
    for (auto& [fd, conn] : conns_) {
      ::close(conn->fd);
      conn->fd = -1;
    }
    conns_.clear();
    // Connections still parked in the listen backlog were never accepted;
    // closing the listener alone would leave them ESTABLISHED with no
    // owner, and their clients blocked on a response forever. Drain and
    // close them so every peer sees EOF.
    while (true) {
      const int fd = ::accept4(t_->listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;
      }
      ::close(fd);
    }
    ::close(ep_);
    return status;
  }

 private:
  using Mode = Conn::Mode;

  bool Add(int fd) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    return ::epoll_ctl(ep_, EPOLL_CTL_ADD, fd, &ev) == 0;
  }

  void Accept() {
    while (true) {
      const int fd = ::accept4(t_->listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
            errno == ENOMEM) {
          // Transient resource exhaustion: back off instead of shutting
          // the whole server down — it clears when clients close.
          backoff_ = true;
          return;
        }
        // Listener broken (or shutdown(2) by legacy callers): stop
        // serving, matching the old accept-loop behavior.
        stop_ = true;
        return;
      }
      auto conn = std::make_shared<Conn>();
      conn->fd = fd;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      if (::epoll_ctl(ep_, EPOLL_CTL_ADD, fd, &ev) != 0) {
        ::close(fd);
        continue;
      }
      conn->registered = true;
      conn->armed = EPOLLIN;
      conns_.emplace(fd, std::move(conn));
    }
  }

  void OnConnEvent(int fd, uint32_t ev) {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) return;  // closed earlier in this batch
    // Copy the shared_ptr: Close() erases the map entry mid-handling.
    const std::shared_ptr<Conn> conn = it->second;
    if ((ev & (EPOLLHUP | EPOLLERR)) != 0 && conn->busy) {
      // The peer vanished while its frame is being handled. Deregister so
      // the level-triggered HUP stops firing; the completion discards the
      // response and closes.
      if (conn->registered) {
        ::epoll_ctl(ep_, EPOLL_CTL_DEL, conn->fd, nullptr);
        conn->registered = false;
      }
      conn->hangup = true;
      return;
    }
    if ((ev & EPOLLOUT) != 0) OnWritable(conn);
    if (conn->fd >= 0 && (ev & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
      OnReadable(conn);
    }
  }

  // Backpressure rule for reading and dispatch: instead of pausing input
  // the moment ONE response is unflushed, keep accepting pipelined frames
  // until the unflushed tail passes the frame cap. Responses still come
  // back in request order (one frame in flight at a time), they just
  // coalesce into one gathered write; the out backlog stays bounded by
  // the cap plus one response.
  bool OutUnderCap(const Conn* c) const {
    return c->out_bytes <= t_->max_line_bytes_;
  }

  void OnReadable(const std::shared_ptr<Conn>& conn) {
    Conn* c = conn.get();
    char chunk[64 * 1024];
    while (c->fd >= 0 && !c->busy && !c->close_after_flush &&
           OutUnderCap(c) && !c->eof) {
      // lint: socket-io(the transport owns raw socket IO)
      const ssize_t got = ::recv(c->fd, chunk, sizeof(chunk), 0);
      if (got < 0 && errno == EINTR) continue;
      if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (got < 0) {
        Close(c);
        return;
      }
      if (got == 0) {
        c->eof = true;
        break;
      }
      c->in.append(chunk, static_cast<size_t>(got));
      ProcessInput(conn);
    }
    MaybeFinish(conn);
    if (c->fd >= 0) UpdateInterest(c);
  }

  void OnWritable(const std::shared_ptr<Conn>& conn) {
    if (!Flush(conn.get())) return;  // closed on send failure
    // Draining may reopen dispatch: a frame can sit buffered in c->in
    // while the out tail was over the cap, and a level-triggered EPOLLIN
    // never refires for bytes already read off the socket.
    ProcessInput(conn);
    MaybeFinish(conn);
    if (conn->fd >= 0) UpdateInterest(conn.get());
  }

  // Frames exactly one request out of conn->in and dispatches it. One
  // frame in flight per connection: responses come back in request order
  // and both buffers stay bounded (reading is disarmed while busy).
  void ProcessInput(const std::shared_ptr<Conn>& conn) {
    Conn* c = conn.get();
    if (c->fd < 0 || c->busy || c->close_after_flush || !OutUnderCap(c)) {
      return;
    }
    if (c->mode == Mode::kUndecided && !DecideMode(c)) return;
    if (c->mode == Mode::kJson) {
      ProcessJsonInput(conn);
    } else {
      ProcessBinaryInput(conn);
    }
  }

  // Negotiation: the binary protocol's first bytes are frame::kMagic
  // ("HBTF"); a JSON request starts with '{' or whitespace. Any prefix
  // mismatch settles on JSON; a full match settles on binary; a strict
  // prefix of the magic waits for more bytes.
  bool DecideMode(Conn* c) {
    if (t_->hooks_.handle_frame == nullptr) {
      c->mode = Mode::kJson;
      return true;
    }
    char magic[4];
    const uint32_t m = frame::kMagic;
    std::memcpy(magic, &m, sizeof(magic));
    const size_t have = std::min(c->in.size(), sizeof(magic));
    if (have == 0) return false;
    if (std::memcmp(c->in.data(), magic, have) != 0) {
      c->mode = Mode::kJson;
    } else if (have == sizeof(magic)) {
      c->mode = Mode::kBinary;
    } else {
      return false;  // an exact magic prefix so far — wait for more
    }
    return true;
  }

  void ProcessJsonInput(const std::shared_ptr<Conn>& conn) {
    Conn* c = conn.get();
    while (true) {
      const size_t nl = c->in.find('\n');
      if (nl == std::string::npos) {
        // An unterminated frame already past the cap can never become a
        // valid line; answer once and hang up rather than buffering
        // unboundedly.
        if (c->in.size() > t_->max_line_bytes_) {
          QueueResponse(c, t_->hooks_.oversize() + "\n");
          c->close_after_flush = true;
          c->in.clear();
        }
        return;
      }
      std::string_view line(c->in.data(), nl);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (line.empty()) {
        c->in.erase(0, nl + 1);
        continue;
      }
      // Terminated oversized lines are answered (and counted) through
      // the handler — which applies its own cap — then the connection
      // closes, the same deterministic rule as the thread-per-connection
      // transport had.
      const bool close_after = line.size() > t_->max_line_bytes_;
      std::string data(line);
      c->in.erase(0, nl + 1);
      Dispatch(conn, std::move(data), /*binary=*/false, close_after);
      return;
    }
  }

  void ProcessBinaryInput(const std::shared_ptr<Conn>& conn) {
    Conn* c = conn.get();
    // Interstitial newlines between frames are tolerated: the client's
    // negotiation probe is newline-terminated so a JSON-only server
    // answers it as one garbage line instead of waiting forever.
    size_t skip = 0;
    while (skip < c->in.size() &&
           (c->in[skip] == '\n' || c->in[skip] == '\r')) {
      ++skip;
    }
    if (skip > 0) c->in.erase(0, skip);
    if (c->in.size() < frame::kHeaderBytes) return;
    uint32_t magic;
    uint32_t length;
    std::memcpy(&magic, c->in.data(), sizeof(magic));
    std::memcpy(&length, c->in.data() + sizeof(magic), sizeof(length));
    if (magic != frame::kMagic) {
      QueueResponse(c, t_->hooks_.frame_error(Status::InvalidArgument(
                           "bad frame magic mid-stream")));
      c->close_after_flush = true;
      c->in.clear();
      return;
    }
    // The binary analog of max_line_bytes, enforced on the declared
    // length BEFORE buffering the payload: answered exactly once, then
    // the connection closes.
    if (length > t_->max_line_bytes_) {
      QueueResponse(c, t_->hooks_.frame_error(Status::InvalidArgument(
                           "frame of " + std::to_string(length) +
                           " bytes exceeds the limit of " +
                           std::to_string(t_->max_line_bytes_))));
      c->close_after_flush = true;
      c->in.clear();
      return;
    }
    if (c->in.size() < frame::kHeaderBytes + length) return;
    std::string payload = c->in.substr(frame::kHeaderBytes, length);
    c->in.erase(0, frame::kHeaderBytes + length);
    Dispatch(conn, std::move(payload), /*binary=*/true,
             /*close_after=*/false);
  }

  // Hands one frame to the worker pool; the completion comes back through
  // ready_ + the wake eventfd. Falls back to inline execution when no
  // executor is installed or the pool is shutting down — the frame is
  // still answered either way.
  void Dispatch(const std::shared_ptr<Conn>& conn, std::string data,
                bool binary, bool close_after) {
    Conn* c = conn.get();
    c->busy = true;
    if (close_after) c->close_after_flush = true;
    LineTransport* t = t_;
    {
      core::MutexLock lock(t->mu_);
      ++t->in_flight_;
    }
    std::function<void()> work = [t, conn, data = std::move(data),
                                  binary] {
      std::string response = binary ? t->hooks_.handle_frame(data)
                                    : t->hooks_.handle(data) + "\n";
      core::MutexLock lock(t->mu_);
      t->ready_.push_back(Completion{conn, std::move(response)});
      // Wake the loop while still holding mu_: once in_flight_ hits zero
      // the transport may be destroyed, and wake_fd_ with it.
      const uint64_t one = 1;
      // lint: socket-io(eventfd wake, not socket IO)
      [[maybe_unused]] const ssize_t n =
          ::write(t->wake_fd_, &one, sizeof(one));
      --t->in_flight_;
      t->cv_.NotifyAll();
    };
    if (t->hooks_.submit != nullptr && t->hooks_.submit(work).ok()) return;
    work();
  }

  void ProcessCompletions() {
    std::vector<Completion> ready;
    {
      core::MutexLock lock(t_->mu_);
      ready.swap(t_->ready_);
    }
    for (Completion& done : ready) {
      const std::shared_ptr<Conn>& conn = done.conn;
      Conn* c = conn.get();
      c->busy = false;
      if (c->fd < 0) continue;  // connection died while handling
      if (c->hangup) {
        Close(c);
        continue;
      }
      QueueResponse(c, std::move(done.response));
      if (c->fd < 0) continue;  // send failed inside the flush
      ProcessInput(conn);  // the next pipelined frame may be buffered
      MaybeFinish(conn);
      if (c->fd >= 0) UpdateInterest(c);
    }
  }

  void QueueResponse(Conn* c, std::string bytes) {
    if (bytes.empty()) return;
    c->out_bytes += bytes.size();
    c->out.push_back(std::move(bytes));
    Flush(c);  // opportunistic: most responses fit the socket buffer
  }

  // Gathered flush: every queued response buffer goes out in ONE vectored
  // syscall per attempt (sendmsg — writev(2) cannot pass MSG_NOSIGNAL),
  // instead of one send(2) per response. Returns false (and closes) on a
  // fatal send error; partial writes leave the rest for EPOLLOUT.
  bool Flush(Conn* c) {
    while (!c->out.empty()) {
      iovec iov[kFlushIovMax];
      size_t n = 0;
      for (const std::string& buf : c->out) {
        if (n == kFlushIovMax) break;
        const size_t skip = (n == 0) ? c->out_off : 0;
        iov[n].iov_base = const_cast<char*>(buf.data()) + skip;
        iov[n].iov_len = buf.size() - skip;
        ++n;
      }
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = n;
      // lint: socket-io(the transport owns raw socket IO)
      const ssize_t sent = ::sendmsg(c->fd, &msg, MSG_NOSIGNAL);
      if (sent < 0 && errno == EINTR) continue;
      if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return true;  // backpressure — UpdateInterest arms EPOLLOUT
      }
      if (sent <= 0) {
        Close(c);
        return false;
      }
      size_t advanced = static_cast<size_t>(sent);
      c->out_bytes -= advanced;
      while (advanced > 0) {
        const size_t left = c->out.front().size() - c->out_off;
        if (advanced < left) {
          c->out_off += advanced;
          break;
        }
        advanced -= left;
        c->out.pop_front();
        c->out_off = 0;
      }
    }
    return true;
  }

  // Terminal transitions: close once a deferred close's output drains,
  // and answer the final unterminated frame a half-closing peer left
  // behind (matching ServeStream — a client that sends one request with
  // no trailing newline and shutdown(SHUT_WR)s still gets its response).
  void MaybeFinish(const std::shared_ptr<Conn>& conn) {
    Conn* c = conn.get();
    if (c->fd < 0 || c->busy) return;
    const bool flushed = c->out.empty();
    if (c->close_after_flush) {
      if (flushed) Close(c);
      return;
    }
    if (!c->eof || !flushed) return;
    if (!c->in.empty() && c->mode != Mode::kBinary) {
      std::string_view line(c->in);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (!line.empty()) {
        std::string data(line);
        c->in.clear();
        Dispatch(conn, std::move(data), /*binary=*/false,
                 /*close_after=*/true);
        return;
      }
    }
    // A trailing *binary* fragment can never be answered (the frame is
    // incomplete by construction); just close.
    Close(c);
  }

  void UpdateInterest(Conn* c) {
    uint32_t want = 0;
    if (!c->busy && !c->close_after_flush && OutUnderCap(c) && !c->eof) {
      want |= EPOLLIN;
    }
    if (!c->out.empty()) want |= EPOLLOUT;
    if (want == c->armed || !c->registered) return;
    epoll_event ev{};
    ev.events = want;
    ev.data.fd = c->fd;
    if (::epoll_ctl(ep_, EPOLL_CTL_MOD, c->fd, &ev) == 0) c->armed = want;
  }

  void Close(Conn* c) {
    if (c->fd < 0) return;
    if (c->registered) {
      ::epoll_ctl(ep_, EPOLL_CTL_DEL, c->fd, nullptr);
      c->registered = false;
    }
    conns_.erase(c->fd);  // callers hold their own shared_ptr
    ::close(c->fd);
    c->fd = -1;
  }

  LineTransport* t_;
  int ep_ = -1;
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;
  bool stop_ = false;
  bool backoff_ = false;
};

LineTransport::LineTransport(size_t max_line_bytes, TransportHooks hooks)
    : max_line_bytes_(max_line_bytes), hooks_(std::move(hooks)) {
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  stop_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
}

LineTransport::~LineTransport() {
  Shutdown();
  {
    core::MutexLock lock(mu_);
    // Serve() drains in_flight_ before dropping serving_, but guard both
    // anyway: a worker may still be between its final decrement and
    // returning, and the eventfds must outlive its wake write.
    while (serving_ || in_flight_ != 0) cv_.Wait(mu_);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (stop_fd_ >= 0) ::close(stop_fd_);
}

void LineTransport::ServeStream(std::istream& in, std::ostream& out) {
  // Character-at-a-time so each frame is answered the moment its newline
  // arrives — a block read would sit on a long-lived pipe waiting for a
  // full chunk while the writer waits for the response (deadlock). The
  // per-char overhead is irrelevant next to request handling, and the
  // line buffer stays bounded by the same cap as the TCP path.
  std::string line;
  const auto emit = [this, &out](std::string_view frame) {
    if (!frame.empty() && frame.back() == '\r') frame.remove_suffix(1);
    if (frame.empty()) return true;
    out << hooks_.handle(frame) << '\n';
    out.flush();
    return static_cast<bool>(out);
  };
  int ch;
  while ((ch = in.get()) != std::char_traits<char>::eof()) {
    if (ch == '\n') {
      if (!emit(line)) return;
      line.clear();
      continue;
    }
    line.push_back(static_cast<char>(ch));
    // Same oversized-frame rule as the TCP path: any frame past the cap —
    // terminated or not — is answered once and serving stops (the buffer
    // must not grow with the input, and the rule must not depend on where
    // chunk boundaries landed).
    if (line.size() > max_line_bytes_) {
      out << hooks_.oversize() << '\n';
      out.flush();
      return;
    }
  }
  // A final unterminated frame at EOF is still answered (piping a single
  // request without a trailing newline is too common to reject).
  emit(line);
}

Status LineTransport::Listen(uint16_t port) {
  if (listen_fd_ >= 0) return Status::Internal("already listening");
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  // Loopback only: external traffic belongs behind a router/LB, not on a
  // raw port (and the router itself is loopback too — this repo's fleet
  // story is one machine, many address spaces).
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st =
        Status::IoError(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 1024) < 0) {
    const Status st =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }
  listen_fd_ = fd;
  return Status::OK();
}

Status LineTransport::Serve() {
  if (listen_fd_ < 0) return Status::Internal("Listen() first");
  if (wake_fd_ < 0 || stop_fd_ < 0) {
    return Status::IoError("eventfd creation failed");
  }
  {
    core::MutexLock lock(mu_);
    if (serving_) return Status::Internal("Serve() already running");
    serving_ = true;
  }
  Loop loop(this);
  const Status status = loop.Run();
  // Drain: workers still handling frames push their completions (the
  // responses have nowhere to go — every fd is closed) and decrement
  // in_flight_; once it hits zero no thread touches the queue again.
  {
    core::MutexLock lock(mu_);
    while (in_flight_ != 0) cv_.Wait(mu_);
    ready_.clear();
    serving_ = false;
    cv_.NotifyAll();
  }
  return status;
}

void LineTransport::Shutdown() {
  stopping_.store(true, std::memory_order_relaxed);
  if (stop_fd_ >= 0) {
    const uint64_t one = 1;
    // lint: socket-io(eventfd wake, not socket IO)
    [[maybe_unused]] const ssize_t n =
        ::write(stop_fd_, &one, sizeof(one));
  }
}

}  // namespace habit::server
