#include "server/transport.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <istream>
#include <ostream>
#include <thread>
#include <utility>

namespace habit::server {

LineTransport::LineTransport(size_t max_line_bytes, TransportHooks hooks)
    : max_line_bytes_(max_line_bytes), hooks_(std::move(hooks)) {}

LineTransport::~LineTransport() {
  Shutdown();
  // Connection threads are detached but counted; they touch no transport
  // state after their final decrement, so once the count drains the
  // object is safe to destroy.
  {
    core::MutexLock lock(conn_mu_);
    while (active_conns_ != 0) conn_cv_.Wait(conn_mu_);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

namespace {

// Drains complete newline-terminated lines from *buffer ('\r' stripped,
// blank lines skipped), calling emit(line) for each. emit returns false
// to stop; consumed bytes are erased either way. Used by the TCP
// transport; ServeStream frames per character (it must answer the moment
// a newline arrives on a still-open pipe) but follows the same rules —
// the framing contract shared by both lives in the server tests.
template <typename EmitFn>
bool DrainLines(std::string* buffer, const EmitFn& emit) {
  size_t start = 0;
  size_t nl;
  bool keep_going = true;
  while (keep_going &&
         (nl = buffer->find('\n', start)) != std::string::npos) {
    std::string_view line(buffer->data() + start, nl - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    start = nl + 1;
    if (line.empty()) continue;
    keep_going = emit(line);
  }
  buffer->erase(0, start);
  return keep_going;
}

// True when the buffer holds an unterminated frame already past the cap —
// it can never become a valid line, so the transport answers once and
// stops instead of buffering unboundedly.
bool FrameOverflowed(const std::string& buffer, size_t max_line_bytes) {
  return buffer.find('\n') == std::string::npos &&
         buffer.size() > max_line_bytes;
}

// Writes the whole buffer, riding out partial writes; MSG_NOSIGNAL so a
// client that vanished mid-response surfaces as EPIPE, not SIGPIPE.
bool SendAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    const ssize_t sent = ::send(fd, data, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += sent;
    n -= static_cast<size_t>(sent);
  }
  return true;
}

}  // namespace

void LineTransport::ServeStream(std::istream& in, std::ostream& out) {
  // Character-at-a-time so each frame is answered the moment its newline
  // arrives — a block read would sit on a long-lived pipe waiting for a
  // full chunk while the writer waits for the response (deadlock). The
  // per-char overhead is irrelevant next to request handling, and the
  // line buffer stays bounded by the same cap as the TCP path.
  std::string line;
  const auto emit = [this, &out](std::string_view frame) {
    if (!frame.empty() && frame.back() == '\r') frame.remove_suffix(1);
    if (frame.empty()) return true;
    out << hooks_.handle(frame) << '\n';
    out.flush();
    return static_cast<bool>(out);
  };
  int ch;
  while ((ch = in.get()) != std::char_traits<char>::eof()) {
    if (ch == '\n') {
      if (!emit(line)) return;
      line.clear();
      continue;
    }
    line.push_back(static_cast<char>(ch));
    // Same oversized-frame rule as the TCP path: any frame past the cap —
    // terminated or not — is answered once and serving stops (the buffer
    // must not grow with the input, and the rule must not depend on where
    // chunk boundaries landed).
    if (line.size() > max_line_bytes_) {
      out << hooks_.oversize() << '\n';
      out.flush();
      return;
    }
  }
  // A final unterminated frame at EOF is still answered (piping a single
  // request without a trailing newline is too common to reject).
  emit(line);
}

Status LineTransport::Listen(uint16_t port) {
  if (listen_fd_ >= 0) return Status::Internal("already listening");
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  // Loopback only: external traffic belongs behind a router/LB, not on a
  // raw port (and the router itself is loopback too — this repo's fleet
  // story is one machine, many address spaces).
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st =
        Status::IoError(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 128) < 0) {
    const Status st =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }
  listen_fd_ = fd;
  return Status::OK();
}

Status LineTransport::Serve() {
  if (listen_fd_ < 0) return Status::Internal("Listen() first");
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Transient resource exhaustion: back off instead of shutting the
        // whole server down — the condition clears when clients close.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      break;  // listener shut down (Shutdown / signal handler) or broken
    }
    {
      core::MutexLock lock(conn_mu_);
      conn_fds_.push_back(fd);
      ++active_conns_;
    }
    // Detached but counted: a terminated connection must not keep a
    // joinable thread (and its stack) alive until server teardown.
    std::thread([this, fd] { ServeConnection(fd); }).detach();
  }
  // The accept loop only exits to shut down — including via the signal
  // handler, which can only shutdown(2) the *listen* fd (the one
  // async-signal-safe option). Run the full Shutdown here so open
  // connections are woken too; otherwise one idle client would keep the
  // drain wait below blocked forever.
  Shutdown();
  core::MutexLock lock(conn_mu_);
  while (active_conns_ != 0) conn_cv_.Wait(conn_mu_);
  return Status::OK();
}

void LineTransport::Shutdown() {
  stopping_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  core::MutexLock lock(conn_mu_);
  for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
}

void LineTransport::ServeConnection(int fd) {
  std::string buffer;
  char chunk[64 * 1024];
  // One deterministic oversized-frame rule (not dependent on where recv
  // chunk boundaries land): any frame past the cap is answered with an
  // error once and the connection closed. Terminated oversized lines are
  // answered (and counted) through the handler; emit then stops the
  // connection.
  const auto emit = [this, fd](std::string_view line) {
    const std::string response = hooks_.handle(line) + "\n";
    return SendAll(fd, response.data(), response.size()) &&
           line.size() <= max_line_bytes_;
  };
  while (true) {
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) break;  // peer closed or connection shut down
    buffer.append(chunk, static_cast<size_t>(got));
    // An unterminated frame already past the cap can never become valid;
    // answer once and hang up rather than buffering unboundedly.
    if (FrameOverflowed(buffer, max_line_bytes_)) {
      const std::string response = hooks_.oversize() + "\n";
      SendAll(fd, response.data(), response.size());
      buffer.clear();  // already answered; don't also treat as a trailing frame
      break;
    }
    if (!DrainLines(&buffer, emit)) {
      buffer.clear();
      break;
    }
  }
  // A final unterminated frame before peer EOF / half-close is answered,
  // matching ServeStream — a client that sends one request and
  // shutdown(SHUT_WR)s still gets its response.
  if (!buffer.empty()) {
    std::string_view line(buffer);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty()) emit(line);
  }
  // Final decrement wakes Serve()/~LineTransport(); no transport state is
  // touched after it (this thread is detached).
  {
    core::MutexLock lock(conn_mu_);
    for (size_t i = 0; i < conn_fds_.size(); ++i) {
      if (conn_fds_[i] == fd) {
        conn_fds_.erase(conn_fds_.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
    --active_conns_;
    conn_cv_.NotifyAll();
  }
  ::close(fd);
}

}  // namespace habit::server
