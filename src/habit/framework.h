// HabitFramework: the end-to-end public facade. Build it once from
// historical trips (Sections 3.1-3.2) — construction assembles a mutable
// Digraph, freezes it into the CSR CompactGraph, and discards the mutable
// form — then answer imputation queries (Sections 3.3-3.4) against the
// frozen graph.
//
//   habit::core::HabitConfig config;            // r, p, t, ...
//   auto fw = habit::core::HabitFramework::Build(trips, config);
//   auto fill = fw->Impute(gap_start, gap_end, t0, t1);
#pragma once

#include <memory>
#include <vector>

#include "ais/ais.h"
#include "core/status.h"
#include "graph/compact_graph.h"
#include "graph/digraph.h"
#include "habit/config.h"
#include "habit/imputer.h"

namespace habit::core {

/// \brief A built HABIT model: frozen transition graph + imputer.
class HabitFramework {
 public:
  /// Builds the framework from preprocessed trips (the training split).
  static Result<std::unique_ptr<HabitFramework>> Build(
      const std::vector<ais::Trip>& trips, const HabitConfig& config);

  /// Wraps an already-built transition graph (e.g. loaded from CSV by
  /// LoadGraphCsv); the graph is frozen and the mutable form discarded.
  static Result<std::unique_ptr<HabitFramework>> FromGraph(
      graph::Digraph graph, const HabitConfig& config);

  /// Wraps an already-frozen graph (e.g. loaded from a binary snapshot by
  /// graph::LoadGraphSnapshot) — the O(read) cold-start path: no Digraph
  /// rebuild, no re-freeze. The caller's config must describe how the
  /// graph was built (resolution, projection); edge weights are served
  /// from the snapshot verbatim.
  static Result<std::unique_ptr<HabitFramework>> FromFrozen(
      graph::CompactGraph graph, const HabitConfig& config);

  /// Imputes the gap between two boundary reports (coordinates + times).
  Result<Imputation> Impute(const geo::LatLng& gap_start,
                            const geo::LatLng& gap_end, int64_t t_start = 0,
                            int64_t t_end = 0) const {
    return imputer_->Impute(gap_start, gap_end, t_start, t_end);
  }

  /// Same, reusing the caller's search scratch across a batch of queries.
  Result<Imputation> Impute(const geo::LatLng& gap_start,
                            const geo::LatLng& gap_end, int64_t t_start,
                            int64_t t_end,
                            Imputer::SearchScratch* scratch) const {
    return imputer_->Impute(gap_start, gap_end, t_start, t_end, scratch);
  }

  /// Imputes every gap in a degraded trip: consecutive reports more than
  /// `gap_threshold_s` apart are filled; returns the densified polyline of
  /// the full trip.
  Result<geo::Polyline> ImputeTrip(const ais::Trip& trip,
                                   int64_t gap_threshold_s = 30 * 60) const;

  /// The frozen transition graph all queries run against.
  const graph::CompactGraph& graph() const { return graph_; }
  const HabitConfig& config() const { return config_; }

  /// The underlying imputer, for callers that manage their own
  /// Imputer::SearchScratch across a batch of queries.
  const Imputer& imputer() const { return *imputer_; }

  /// \brief Computes `k` ALT landmarks over the frozen graph and attaches
  /// their distance columns (see graph/landmarks.h). Save-time work: the
  /// columns persist through SaveModelSnapshot into the v3 landmark
  /// section. O(k) full Dijkstras per direction.
  Status PrecomputeLandmarks(size_t k);

  /// Turns ALT acceleration on or off for subsequent queries; only
  /// effective when the graph carries landmark columns. Either way,
  /// imputed outputs are identical — landmarks change search effort only.
  void set_use_landmarks(bool on) { imputer_->set_use_landmarks(on); }

  /// In-memory model footprint in bytes (the CSR arrays).
  size_t SizeBytes() const { return graph_.SizeBytes(); }

  /// Persisted-model footprint in bytes (Table 2's "framework storage
  /// size"): the node and edge statistic rows.
  size_t SerializedSizeBytes() const { return graph_.SerializedSizeBytes(); }

 private:
  HabitFramework(graph::CompactGraph graph, const HabitConfig& config);

  graph::CompactGraph graph_;
  HabitConfig config_;
  std::unique_ptr<Imputer> imputer_;
};

}  // namespace habit::core
