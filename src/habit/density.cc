#include "habit/density.h"

#include <algorithm>

namespace habit::core {

void DensityMap::AddPoint(const geo::LatLng& p) {
  const hex::CellId c = hex::LatLngToCell(p, resolution_);
  if (c != hex::kInvalidCell) ++counts_[c];
}

void DensityMap::AddTrip(const ais::Trip& trip) {
  for (const ais::AisRecord& r : trip.points) AddPoint(r.pos);
}

void DensityMap::AddPolyline(const geo::Polyline& line, double spacing_m) {
  for (const geo::LatLng& p : geo::ResampleMaxSpacing(line, spacing_m)) {
    AddPoint(p);
  }
}

int64_t DensityMap::CountAt(hex::CellId cell) const {
  const auto it = counts_.find(cell);
  return it == counts_.end() ? 0 : it->second;
}

int64_t DensityMap::CountAt(const geo::LatLng& p) const {
  return CountAt(hex::LatLngToCell(p, resolution_));
}

int64_t DensityMap::MaxCount() const {
  int64_t best = 0;
  for (const auto& [cell, count] : counts_) best = std::max(best, count);
  return best;
}

db::Table DensityMap::ToTable() const {
  db::Table t(db::Schema{{"cell", db::DataType::kInt64},
                         {"lat", db::DataType::kDouble},
                         {"lon", db::DataType::kDouble},
                         {"count", db::DataType::kInt64}});
  for (const auto& [cell, count] : counts_) {
    const geo::LatLng center = hex::CellToLatLng(cell);
    t.column(0).AppendInt(static_cast<int64_t>(cell));
    t.column(1).AppendDouble(center.lat);
    t.column(2).AppendDouble(center.lng);
    t.column(3).AppendInt(count);
  }
  return t;
}

Result<ImputedDensityResult> BuildImputedDensity(
    const std::vector<ais::Trip>& trips, const HabitFramework& fw,
    int resolution, int64_t gap_threshold_s, double spacing_m) {
  if (resolution < 0 || resolution > hex::kMaxResolution) {
    return Status::InvalidArgument("resolution out of range");
  }
  ImputedDensityResult result{DensityMap(resolution)};
  for (const ais::Trip& trip : trips) {
    // Count the gaps that ImputeTrip will encounter, for reporting.
    for (size_t i = 1; i < trip.points.size(); ++i) {
      if (trip.points[i].ts - trip.points[i - 1].ts > gap_threshold_s) {
        auto fill = fw.Impute(trip.points[i - 1].pos, trip.points[i].pos,
                              trip.points[i - 1].ts, trip.points[i].ts);
        if (fill.ok()) {
          ++result.gaps_filled;
        } else {
          ++result.gaps_unfilled;
        }
      }
    }
    auto filled = fw.ImputeTrip(trip, gap_threshold_s);
    if (filled.ok()) {
      result.map.AddPolyline(filled.value(), spacing_m);
    } else {
      result.map.AddTrip(trip);
    }
  }
  return result;
}

}  // namespace habit::core
