// Vessel-type-aware imputation. The paper (Section 1) notes that large or
// deep-draught vessels cannot navigate narrow straits or shallow waters, so
// the type of the vessel "can be taken into account". This facade builds
// one transition graph per vessel type (plus a combined fallback) and
// routes each query to the graph matching the querying vessel.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "habit/framework.h"

namespace habit::core {

/// \brief A family of HABIT frameworks keyed by vessel type.
class TypedHabitFramework {
 public:
  /// Builds per-type frameworks for every type with at least `min_trips`
  /// training trips, plus a combined all-types fallback. Fails only if the
  /// combined framework cannot be built.
  static Result<std::unique_ptr<TypedHabitFramework>> Build(
      const std::vector<ais::Trip>& trips, const HabitConfig& config,
      size_t min_trips_per_type = 8);

  /// Imputes using the graph for `type` when one exists (falling back to
  /// the combined graph, also when the typed graph cannot connect the
  /// endpoints).
  Result<Imputation> Impute(ais::VesselType type, const geo::LatLng& gap_start,
                            const geo::LatLng& gap_end, int64_t t_start = 0,
                            int64_t t_end = 0) const;

  /// Same, reusing the caller's flat search scratch across a batch of
  /// queries (the scratch is per-query state sized to the largest frozen
  /// graph it has seen, so it is shared safely across the typed and
  /// combined graphs).
  Result<Imputation> Impute(ais::VesselType type, const geo::LatLng& gap_start,
                            const geo::LatLng& gap_end, int64_t t_start,
                            int64_t t_end,
                            Imputer::SearchScratch* scratch) const;

  /// True iff a dedicated graph exists for the type.
  bool HasTypedModel(ais::VesselType type) const {
    return typed_.contains(type);
  }

  const HabitFramework& combined() const { return *combined_; }

  /// Total in-memory footprint across all graphs.
  size_t SizeBytes() const;

  /// Total persisted size across all graphs.
  size_t SerializedSizeBytes() const;

 private:
  TypedHabitFramework() = default;

  std::unique_ptr<HabitFramework> combined_;
  std::map<ais::VesselType, std::unique_ptr<HabitFramework>> typed_;
};

}  // namespace habit::core
