#include "habit/framework.h"

#include "graph/landmarks.h"
#include "habit/graph_builder.h"

namespace habit::core {

HabitFramework::HabitFramework(graph::CompactGraph graph,
                               const HabitConfig& config)
    : graph_(std::move(graph)), config_(config) {
  imputer_ = std::make_unique<Imputer>(&graph_, config_);
}

Result<std::unique_ptr<HabitFramework>> HabitFramework::Build(
    const std::vector<ais::Trip>& trips, const HabitConfig& config) {
  if (trips.empty()) {
    return Status::InvalidArgument("cannot build HABIT from zero trips");
  }
  HABIT_ASSIGN_OR_RETURN(graph::Digraph g, BuildGraphFromTrips(trips, config));
  return FromGraph(std::move(g), config);
}

Result<std::unique_ptr<HabitFramework>> HabitFramework::FromGraph(
    graph::Digraph graph, const HabitConfig& config) {
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument("trips produced an empty graph");
  }
  return FromFrozen(graph.Freeze(), config);
}

Result<std::unique_ptr<HabitFramework>> HabitFramework::FromFrozen(
    graph::CompactGraph graph, const HabitConfig& config) {
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument("cannot serve an empty graph");
  }
  if (!graph.has_attrs()) {
    return Status::InvalidArgument(
        "HABIT needs a graph frozen with attributes (node medians drive "
        "snapping and projection)");
  }
  return std::unique_ptr<HabitFramework>(
      new HabitFramework(std::move(graph), config));
}

Status HabitFramework::PrecomputeLandmarks(size_t k) {
  HABIT_ASSIGN_OR_RETURN(graph::LandmarkSet set,
                         graph::ComputeLandmarks(graph_, k));
  return graph_.AttachLandmarks(std::move(set));
}

Result<geo::Polyline> HabitFramework::ImputeTrip(
    const ais::Trip& trip, int64_t gap_threshold_s) const {
  geo::Polyline out;
  const auto& pts = trip.points;
  if (pts.empty()) return out;
  out.push_back(pts[0].pos);
  for (size_t i = 1; i < pts.size(); ++i) {
    const int64_t dt = pts[i].ts - pts[i - 1].ts;
    if (dt > gap_threshold_s) {
      auto fill = Impute(pts[i - 1].pos, pts[i].pos, pts[i - 1].ts, pts[i].ts);
      if (fill.ok()) {
        // Interior imputed points (path includes both boundary points).
        const geo::Polyline& path = fill.value().path;
        for (size_t k = 1; k + 1 < path.size(); ++k) out.push_back(path[k]);
      }
      // On unreachable gaps, fall through to the straight connection.
    }
    out.push_back(pts[i].pos);
  }
  return out;
}

}  // namespace habit::core
