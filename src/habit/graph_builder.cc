#include "habit/graph_builder.h"

#include <cmath>

#include "hexgrid/hexgrid.h"
#include "minidb/query.h"

namespace habit::core {

const char* ProjectionToString(Projection p) {
  switch (p) {
    case Projection::kCellCenter: return "center";
    case Projection::kDataMedian: return "median";
  }
  return "?";
}

const char* EdgeCostPolicyToString(EdgeCostPolicy p) {
  switch (p) {
    case EdgeCostPolicy::kHops: return "hops";
    case EdgeCostPolicy::kInverseFrequency: return "inverse_frequency";
    case EdgeCostPolicy::kHopsThenFrequency: return "hops_then_frequency";
  }
  return "?";
}

std::string HabitConfig::ToString() const {
  return "HabitConfig{r=" + std::to_string(resolution) +
         ", p=" + ProjectionToString(projection) +
         ", t=" + std::to_string(static_cast<int>(rdp_tolerance_m)) +
         ", cost=" + EdgeCostPolicyToString(edge_cost) + "}";
}

double EdgeCost(EdgeCostPolicy policy, int64_t transitions) {
  const double n = static_cast<double>(std::max<int64_t>(1, transitions));
  switch (policy) {
    case EdgeCostPolicy::kHops:
      return 1.0;
    case EdgeCostPolicy::kInverseFrequency:
      return 1.0 / std::log(std::exp(1.0) + n);
    case EdgeCostPolicy::kHopsThenFrequency:
      return 1.0 + 1.0 / (1.0 + n);
  }
  return 1.0;
}

db::Table TripsToTable(const std::vector<ais::Trip>& trips, int resolution) {
  db::Schema schema{{"trip_id", db::DataType::kInt64},
                    {"mmsi", db::DataType::kInt64},
                    {"ts", db::DataType::kInt64},
                    {"lon", db::DataType::kDouble},
                    {"lat", db::DataType::kDouble},
                    {"sog", db::DataType::kDouble},
                    {"cog", db::DataType::kDouble},
                    {"cell", db::DataType::kInt64}};
  db::Table table(schema);
  for (const ais::Trip& trip : trips) {
    for (const ais::AisRecord& r : trip.points) {
      const hex::CellId cell = hex::LatLngToCell(r.pos, resolution);
      table.column(0).AppendInt(trip.trip_id);
      table.column(1).AppendInt(r.mmsi);
      table.column(2).AppendInt(r.ts);
      table.column(3).AppendDouble(r.pos.lng);
      table.column(4).AppendDouble(r.pos.lat);
      table.column(5).AppendDouble(r.sog);
      table.column(6).AppendDouble(r.cog);
      table.column(7).AppendInt(static_cast<int64_t>(cell));
    }
  }
  return table;
}

Result<db::Table> ComputeCellStats(const db::Table& ais_table,
                                   const HabitConfig& config) {
  // SELECT cell, count(*), approx_count_distinct(mmsi),
  //        median(lon), median(lat), median(sog), median(cog)
  // FROM ais GROUP BY cell
  return db::From(ais_table)
      .GroupBy({"cell"},
               {{db::AggKind::kCount, "", "cnt"},
                {db::AggKind::kApproxCountDistinct, "mmsi", "vessels"},
                {db::AggKind::kMedianExact, "lon", "med_lon"},
                {db::AggKind::kMedianExact, "lat", "med_lat"},
                {db::AggKind::kMedianExact, "sog", "med_sog"},
                {db::AggKind::kMedianExact, "cog", "med_cog"}},
               config.hll_precision)
      .Execute();
}

Result<db::Table> ComputeTransitionStats(const db::Table& ais_table,
                                         const HabitConfig& config) {
  // WITH lagged AS (SELECT *, LAG(cell) OVER (PARTITION BY trip_id
  //                                           ORDER BY ts) AS lag_cell ...)
  // SELECT lag_cell, cell, approx_count_distinct(trip_id) AS transitions
  // FROM lagged WHERE lag_cell IS NOT NULL AND lag_cell <> cell
  // GROUP BY lag_cell, cell
  HABIT_ASSIGN_OR_RETURN(
      db::Table grouped,
      db::From(ais_table)
          .WindowLag({"trip_id"}, "ts", "cell", "lag_cell")
          .Filter(db::And(db::Not(db::IsNull(db::Col("lag_cell"))),
                          db::Ne(db::Col("lag_cell"), db::Col("cell"))))
          .GroupBy({"lag_cell", "cell"},
                   {{db::AggKind::kApproxCountDistinct, "trip_id",
                     "transitions"}},
                   config.hll_precision)
          .Execute());

  // Augment with the hex grid distance of each transition
  // (h3_grid_distance(lag_cl, cl) in the paper).
  db::Schema schema = grouped.schema();
  schema.AddField("grid_distance", db::DataType::kInt64);
  db::Table out(schema);
  HABIT_ASSIGN_OR_RETURN(const db::Column* lag_col,
                         grouped.GetColumn("lag_cell"));
  HABIT_ASSIGN_OR_RETURN(const db::Column* cell_col, grouped.GetColumn("cell"));
  for (size_t r = 0; r < grouped.num_rows(); ++r) {
    for (size_t c = 0; c < grouped.num_columns(); ++c) {
      out.column(c).AppendValue(grouped.column(c).GetValue(r));
    }
    const auto a = static_cast<hex::CellId>(lag_col->GetInt(r));
    const auto b = static_cast<hex::CellId>(cell_col->GetInt(r));
    const auto dist = hex::GridDistance(a, b);
    if (dist.ok()) {
      out.column(grouped.num_columns()).AppendInt(dist.value());
    } else {
      out.column(grouped.num_columns()).AppendNull();
    }
  }
  return out;
}

Result<graph::Digraph> BuildTransitionGraph(const db::Table& cell_stats,
                                            const db::Table& transition_stats,
                                            const HabitConfig& config) {
  graph::Digraph g;

  HABIT_ASSIGN_OR_RETURN(const db::Column* cell_col,
                         cell_stats.GetColumn("cell"));
  HABIT_ASSIGN_OR_RETURN(const db::Column* cnt_col, cell_stats.GetColumn("cnt"));
  HABIT_ASSIGN_OR_RETURN(const db::Column* vessels_col,
                         cell_stats.GetColumn("vessels"));
  HABIT_ASSIGN_OR_RETURN(const db::Column* lon_col,
                         cell_stats.GetColumn("med_lon"));
  HABIT_ASSIGN_OR_RETURN(const db::Column* lat_col,
                         cell_stats.GetColumn("med_lat"));
  HABIT_ASSIGN_OR_RETURN(const db::Column* sog_col,
                         cell_stats.GetColumn("med_sog"));
  HABIT_ASSIGN_OR_RETURN(const db::Column* cog_col,
                         cell_stats.GetColumn("med_cog"));

  for (size_t r = 0; r < cell_stats.num_rows(); ++r) {
    const auto cell = static_cast<hex::CellId>(cell_col->GetInt(r));
    graph::NodeAttrs attrs;
    attrs.median_pos = geo::LatLng{lat_col->GetDouble(r), lon_col->GetDouble(r)};
    attrs.center_pos = hex::CellToLatLng(cell);
    attrs.message_count = cnt_col->GetInt(r);
    attrs.distinct_vessels = vessels_col->GetInt(r);
    attrs.median_sog = sog_col->GetDouble(r);
    attrs.median_cog = cog_col->GetDouble(r);
    g.AddNode(cell, attrs);
  }

  HABIT_ASSIGN_OR_RETURN(const db::Column* lag_col,
                         transition_stats.GetColumn("lag_cell"));
  HABIT_ASSIGN_OR_RETURN(const db::Column* to_col,
                         transition_stats.GetColumn("cell"));
  HABIT_ASSIGN_OR_RETURN(const db::Column* trans_col,
                         transition_stats.GetColumn("transitions"));
  HABIT_ASSIGN_OR_RETURN(const db::Column* dist_col,
                         transition_stats.GetColumn("grid_distance"));

  // Accumulate transition counts per directed cell pair. With
  // expand_transitions, a jump of grid distance g > 1 contributes its count
  // to every consecutive pair along the hex grid path between the two
  // cells (the discretization skipped those cells, not the vessel).
  struct PairHash {
    size_t operator()(const std::pair<uint64_t, uint64_t>& p) const {
      return std::hash<uint64_t>()(p.first * 0x9e3779b97f4a7c15ULL ^
                                   p.second);
    }
  };
  std::unordered_map<std::pair<uint64_t, uint64_t>, int64_t, PairHash> accum;
  for (size_t r = 0; r < transition_stats.num_rows(); ++r) {
    const auto u = static_cast<hex::CellId>(lag_col->GetInt(r));
    const auto v = static_cast<hex::CellId>(to_col->GetInt(r));
    const int64_t transitions = trans_col->GetInt(r);
    const int64_t grid_dist =
        dist_col->IsValid(r) ? dist_col->GetInt(r) : 1;
    if (config.expand_transitions && grid_dist > 1) {
      auto path = hex::GridPathCells(u, v);
      if (path.ok() && path.value().size() >= 2) {
        const auto& cells = path.value();
        for (size_t i = 1; i < cells.size(); ++i) {
          accum[{cells[i - 1], cells[i]}] += transitions;
        }
        continue;
      }
    }
    accum[{u, v}] += transitions;
  }

  for (const auto& [pair, transitions] : accum) {
    const auto [u, v] = pair;
    // Intermediate cells materialized by the expansion carry no AIS
    // statistics; give them their geometric center as the median position
    // so the inverse projection stays well-defined.
    for (const uint64_t cell : {u, v}) {
      if (!g.HasNode(cell)) {
        graph::NodeAttrs attrs;
        attrs.center_pos = hex::CellToLatLng(cell);
        attrs.median_pos = attrs.center_pos;
        g.AddNode(cell, attrs);
      }
    }
    const auto dist = hex::GridDistance(u, v);
    graph::EdgeAttrs attrs;
    attrs.transitions = transitions;
    attrs.grid_distance = dist.ok() ? dist.value() : 1;
    attrs.weight = EdgeCost(config.edge_cost, transitions) *
                   static_cast<double>(std::max<int64_t>(1, attrs.grid_distance));
    g.AddEdge(u, v, attrs);
  }
  return g;
}

Result<graph::Digraph> BuildGraphFromTrips(const std::vector<ais::Trip>& trips,
                                           const HabitConfig& config) {
  if (config.resolution < 0 || config.resolution > hex::kMaxResolution) {
    return Status::InvalidArgument("resolution out of range");
  }
  const db::Table ais_table = TripsToTable(trips, config.resolution);
  HABIT_ASSIGN_OR_RETURN(db::Table cell_stats,
                         ComputeCellStats(ais_table, config));
  HABIT_ASSIGN_OR_RETURN(db::Table transition_stats,
                         ComputeTransitionStats(ais_table, config));
  return BuildTransitionGraph(cell_stats, transition_stats, config);
}

}  // namespace habit::core
