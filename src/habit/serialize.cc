#include "habit/serialize.h"

#include <algorithm>

#include "habit/graph_builder.h"
#include "hexgrid/hexgrid.h"
#include "minidb/csv.h"

namespace habit::core {

db::Table GraphNodesToTable(const graph::CompactGraph& g) {
  db::Table t(db::Schema{{"cell", db::DataType::kInt64},
                         {"med_lon", db::DataType::kDouble},
                         {"med_lat", db::DataType::kDouble},
                         {"cnt", db::DataType::kInt64},
                         {"vessels", db::DataType::kInt64},
                         {"med_sog", db::DataType::kDouble},
                         {"med_cog", db::DataType::kDouble}});
  g.ForEachNode([&](graph::NodeId id, const graph::NodeAttrs& attrs) {
    t.column(0).AppendInt(static_cast<int64_t>(id));
    t.column(1).AppendDouble(attrs.median_pos.lng);
    t.column(2).AppendDouble(attrs.median_pos.lat);
    t.column(3).AppendInt(attrs.message_count);
    t.column(4).AppendInt(attrs.distinct_vessels);
    t.column(5).AppendDouble(attrs.median_sog);
    t.column(6).AppendDouble(attrs.median_cog);
  });
  return t;
}

db::Table GraphEdgesToTable(const graph::CompactGraph& g) {
  db::Table t(db::Schema{{"src", db::DataType::kInt64},
                         {"dst", db::DataType::kInt64},
                         {"transitions", db::DataType::kInt64},
                         {"grid_distance", db::DataType::kInt64}});
  g.ForEachEdge([&](graph::NodeId u, graph::NodeId v,
                    const graph::EdgeAttrs& attrs) {
    t.column(0).AppendInt(static_cast<int64_t>(u));
    t.column(1).AppendInt(static_cast<int64_t>(v));
    t.column(2).AppendInt(attrs.transitions);
    t.column(3).AppendInt(attrs.grid_distance);
  });
  return t;
}

Status SaveGraphCsv(const graph::CompactGraph& g,
                    const std::string& prefix) {
  HABIT_RETURN_NOT_OK(
      db::WriteCsv(GraphNodesToTable(g), prefix + "_nodes.csv"));
  return db::WriteCsv(GraphEdgesToTable(g), prefix + "_edges.csv");
}

Result<graph::Digraph> LoadGraphCsv(const std::string& prefix,
                                    const HabitConfig& config) {
  HABIT_ASSIGN_OR_RETURN(db::Table nodes,
                         db::ReadCsv(prefix + "_nodes.csv"));
  HABIT_ASSIGN_OR_RETURN(db::Table edges,
                         db::ReadCsv(prefix + "_edges.csv"));

  graph::Digraph g;
  {
    HABIT_ASSIGN_OR_RETURN(const db::Column* cell, nodes.GetColumn("cell"));
    HABIT_ASSIGN_OR_RETURN(const db::Column* lon, nodes.GetColumn("med_lon"));
    HABIT_ASSIGN_OR_RETURN(const db::Column* lat, nodes.GetColumn("med_lat"));
    HABIT_ASSIGN_OR_RETURN(const db::Column* cnt, nodes.GetColumn("cnt"));
    HABIT_ASSIGN_OR_RETURN(const db::Column* vessels,
                           nodes.GetColumn("vessels"));
    HABIT_ASSIGN_OR_RETURN(const db::Column* sog, nodes.GetColumn("med_sog"));
    HABIT_ASSIGN_OR_RETURN(const db::Column* cog, nodes.GetColumn("med_cog"));
    for (size_t r = 0; r < nodes.num_rows(); ++r) {
      const auto id = static_cast<hex::CellId>(cell->GetInt(r));
      if (!hex::IsValidCell(id)) {
        return Status::InvalidArgument("corrupt node row " +
                                       std::to_string(r));
      }
      graph::NodeAttrs attrs;
      attrs.median_pos = geo::LatLng{lat->GetDouble(r), lon->GetDouble(r)};
      attrs.center_pos = hex::CellToLatLng(id);
      attrs.message_count = cnt->GetInt(r);
      attrs.distinct_vessels = vessels->GetInt(r);
      attrs.median_sog = sog->GetDouble(r);
      attrs.median_cog = cog->GetDouble(r);
      g.AddNode(id, attrs);
    }
  }
  {
    HABIT_ASSIGN_OR_RETURN(const db::Column* src, edges.GetColumn("src"));
    HABIT_ASSIGN_OR_RETURN(const db::Column* dst, edges.GetColumn("dst"));
    HABIT_ASSIGN_OR_RETURN(const db::Column* trans,
                           edges.GetColumn("transitions"));
    HABIT_ASSIGN_OR_RETURN(const db::Column* dist,
                           edges.GetColumn("grid_distance"));
    for (size_t r = 0; r < edges.num_rows(); ++r) {
      graph::EdgeAttrs attrs;
      attrs.transitions = trans->GetInt(r);
      attrs.grid_distance = std::max<int64_t>(1, dist->GetInt(r));
      attrs.weight = EdgeCost(config.edge_cost, attrs.transitions) *
                     static_cast<double>(attrs.grid_distance);
      g.AddEdge(static_cast<graph::NodeId>(src->GetInt(r)),
                static_cast<graph::NodeId>(dst->GetInt(r)), attrs);
    }
  }
  return g;
}

}  // namespace habit::core
