#include "habit/serialize.h"

#include <algorithm>

#include "graph/snapshot.h"
#include "habit/graph_builder.h"
#include "hexgrid/hexgrid.h"
#include "minidb/csv.h"

namespace habit::core {

namespace {

// CSV columns are type-inferred, so a corrupt file can hand back a column
// of the wrong type — and reading it through the wrong accessor (GetInt on
// a double column) indexes an empty value vector. Validate before touching
// any row. Double reads accept int64 columns (GetDouble widens).
Status RequireNumericColumn(const db::Column* col, const char* name,
                            bool need_int) {
  if (col->type() == db::DataType::kInt64 ||
      (!need_int && col->type() == db::DataType::kDouble)) {
    return Status::OK();
  }
  return Status::InvalidArgument(
      std::string("corrupt model file: column '") + name + "' holds " +
      db::DataTypeToString(col->type()) +
      (need_int ? ", expected int64" : ", expected a numeric type"));
}

}  // namespace

db::Table GraphNodesToTable(const graph::CompactGraph& g) {
  db::Table t(db::Schema{{"cell", db::DataType::kInt64},
                         {"med_lon", db::DataType::kDouble},
                         {"med_lat", db::DataType::kDouble},
                         {"cnt", db::DataType::kInt64},
                         {"vessels", db::DataType::kInt64},
                         {"med_sog", db::DataType::kDouble},
                         {"med_cog", db::DataType::kDouble}});
  g.ForEachNode([&](graph::NodeId id, const graph::NodeAttrs& attrs) {
    t.column(0).AppendInt(static_cast<int64_t>(id));
    t.column(1).AppendDouble(attrs.median_pos.lng);
    t.column(2).AppendDouble(attrs.median_pos.lat);
    t.column(3).AppendInt(attrs.message_count);
    t.column(4).AppendInt(attrs.distinct_vessels);
    t.column(5).AppendDouble(attrs.median_sog);
    t.column(6).AppendDouble(attrs.median_cog);
  });
  return t;
}

db::Table GraphEdgesToTable(const graph::CompactGraph& g) {
  db::Table t(db::Schema{{"src", db::DataType::kInt64},
                         {"dst", db::DataType::kInt64},
                         {"transitions", db::DataType::kInt64},
                         {"grid_distance", db::DataType::kInt64}});
  g.ForEachEdge([&](graph::NodeId u, graph::NodeId v,
                    const graph::EdgeAttrs& attrs) {
    t.column(0).AppendInt(static_cast<int64_t>(u));
    t.column(1).AppendInt(static_cast<int64_t>(v));
    t.column(2).AppendInt(attrs.transitions);
    t.column(3).AppendInt(attrs.grid_distance);
  });
  return t;
}

Status SaveGraphCsv(const graph::CompactGraph& g,
                    const std::string& prefix) {
  HABIT_RETURN_NOT_OK(
      db::WriteCsv(GraphNodesToTable(g), prefix + "_nodes.csv"));
  return db::WriteCsv(GraphEdgesToTable(g), prefix + "_edges.csv");
}

Result<graph::Digraph> LoadGraphCsv(const std::string& prefix,
                                    const HabitConfig& config) {
  HABIT_ASSIGN_OR_RETURN(db::Table nodes,
                         db::ReadCsv(prefix + "_nodes.csv"));
  HABIT_ASSIGN_OR_RETURN(db::Table edges,
                         db::ReadCsv(prefix + "_edges.csv"));

  graph::Digraph g;
  {
    HABIT_ASSIGN_OR_RETURN(const db::Column* cell, nodes.GetColumn("cell"));
    HABIT_ASSIGN_OR_RETURN(const db::Column* lon, nodes.GetColumn("med_lon"));
    HABIT_ASSIGN_OR_RETURN(const db::Column* lat, nodes.GetColumn("med_lat"));
    HABIT_ASSIGN_OR_RETURN(const db::Column* cnt, nodes.GetColumn("cnt"));
    HABIT_ASSIGN_OR_RETURN(const db::Column* vessels,
                           nodes.GetColumn("vessels"));
    HABIT_ASSIGN_OR_RETURN(const db::Column* sog, nodes.GetColumn("med_sog"));
    HABIT_ASSIGN_OR_RETURN(const db::Column* cog, nodes.GetColumn("med_cog"));
    HABIT_RETURN_NOT_OK(RequireNumericColumn(cell, "cell", true));
    HABIT_RETURN_NOT_OK(RequireNumericColumn(lon, "med_lon", false));
    HABIT_RETURN_NOT_OK(RequireNumericColumn(lat, "med_lat", false));
    HABIT_RETURN_NOT_OK(RequireNumericColumn(cnt, "cnt", true));
    HABIT_RETURN_NOT_OK(RequireNumericColumn(vessels, "vessels", true));
    HABIT_RETURN_NOT_OK(RequireNumericColumn(sog, "med_sog", false));
    HABIT_RETURN_NOT_OK(RequireNumericColumn(cog, "med_cog", false));
    for (size_t r = 0; r < nodes.num_rows(); ++r) {
      const auto id = static_cast<hex::CellId>(cell->GetInt(r));
      if (!hex::IsValidCell(id)) {
        return Status::InvalidArgument("corrupt node row " +
                                       std::to_string(r));
      }
      graph::NodeAttrs attrs;
      attrs.median_pos = geo::LatLng{lat->GetDouble(r), lon->GetDouble(r)};
      attrs.center_pos = hex::CellToLatLng(id);
      attrs.message_count = cnt->GetInt(r);
      attrs.distinct_vessels = vessels->GetInt(r);
      attrs.median_sog = sog->GetDouble(r);
      attrs.median_cog = cog->GetDouble(r);
      g.AddNode(id, attrs);
    }
  }
  {
    HABIT_ASSIGN_OR_RETURN(const db::Column* src, edges.GetColumn("src"));
    HABIT_ASSIGN_OR_RETURN(const db::Column* dst, edges.GetColumn("dst"));
    HABIT_ASSIGN_OR_RETURN(const db::Column* trans,
                           edges.GetColumn("transitions"));
    HABIT_ASSIGN_OR_RETURN(const db::Column* dist,
                           edges.GetColumn("grid_distance"));
    HABIT_RETURN_NOT_OK(RequireNumericColumn(src, "src", true));
    HABIT_RETURN_NOT_OK(RequireNumericColumn(dst, "dst", true));
    HABIT_RETURN_NOT_OK(RequireNumericColumn(trans, "transitions", true));
    HABIT_RETURN_NOT_OK(RequireNumericColumn(dist, "grid_distance", true));
    for (size_t r = 0; r < edges.num_rows(); ++r) {
      graph::EdgeAttrs attrs;
      attrs.transitions = trans->GetInt(r);
      attrs.grid_distance = std::max<int64_t>(1, dist->GetInt(r));
      attrs.weight = EdgeCost(config.edge_cost, attrs.transitions) *
                     static_cast<double>(attrs.grid_distance);
      const auto u = static_cast<graph::NodeId>(src->GetInt(r));
      const auto v = static_cast<graph::NodeId>(dst->GetInt(r));
      // Both endpoints must come from the nodes table: Digraph::AddEdge
      // auto-creates missing nodes with default attributes, so a corrupt
      // edges file would otherwise load into a graph with phantom cells at
      // lat/lng (0,0) that the snap-candidate search could select.
      if (!g.HasNode(u) || !g.HasNode(v)) {
        return Status::InvalidArgument(
            "corrupt edge row " + std::to_string(r) + ": endpoint " +
            std::to_string(g.HasNode(u) ? v : u) + " is not in the nodes "
            "table");
      }
      g.AddEdge(u, v, attrs);
    }
  }
  return g;
}

Status SaveModelSnapshot(const HabitFramework& fw, const std::string& path) {
  const HabitConfig& config = fw.config();
  graph::SnapshotWriter writer;
  writer.I64(config.resolution);
  writer.U32(static_cast<uint32_t>(config.projection));
  writer.F64(config.rdp_tolerance_m);
  writer.U32(static_cast<uint32_t>(config.edge_cost));
  writer.I64(config.hll_precision);
  writer.I64(config.max_snap_ring);
  writer.U32(config.expand_transitions ? 1 : 0);
  graph::AppendGraphSection(writer, fw.graph());
  return writer.WriteToFile(path, graph::SnapshotKind::kHabitModel);
}

Result<std::unique_ptr<HabitFramework>> LoadModelSnapshot(
    const std::string& path, bool mapped) {
  HABIT_ASSIGN_OR_RETURN(
      graph::SnapshotReader reader,
      mapped ? graph::SnapshotReader::FromFileMapped(
                   path, graph::SnapshotKind::kHabitModel)
             : graph::SnapshotReader::FromFile(
                   path, graph::SnapshotKind::kHabitModel));
  HabitConfig config;
  HABIT_ASSIGN_OR_RETURN(const int64_t resolution, reader.I64());
  HABIT_ASSIGN_OR_RETURN(const uint32_t projection, reader.U32());
  HABIT_ASSIGN_OR_RETURN(config.rdp_tolerance_m, reader.F64());
  HABIT_ASSIGN_OR_RETURN(const uint32_t edge_cost, reader.U32());
  HABIT_ASSIGN_OR_RETURN(const int64_t hll_precision, reader.I64());
  HABIT_ASSIGN_OR_RETURN(const int64_t max_snap_ring, reader.I64());
  HABIT_ASSIGN_OR_RETURN(const uint32_t expand, reader.U32());
  if (resolution < 0 || resolution > hex::kMaxResolution ||
      projection > static_cast<uint32_t>(Projection::kDataMedian) ||
      edge_cost >
          static_cast<uint32_t>(EdgeCostPolicy::kHopsThenFrequency)) {
    return Status::IoError("HABIT snapshot '" + path +
                           "' carries an invalid configuration");
  }
  config.resolution = static_cast<int>(resolution);
  config.projection = static_cast<Projection>(projection);
  config.edge_cost = static_cast<EdgeCostPolicy>(edge_cost);
  config.hll_precision = static_cast<int>(hll_precision);
  config.max_snap_ring = static_cast<int>(max_snap_ring);
  config.expand_transitions = expand != 0;
  HABIT_ASSIGN_OR_RETURN(graph::CompactGraph frozen,
                         graph::ReadGraphSection(reader));
  if (!reader.AtEnd()) {
    return Status::IoError("HABIT snapshot '" + path +
                           "' has trailing bytes");
  }
  return HabitFramework::FromFrozen(std::move(frozen), config);
}

}  // namespace habit::core
