// HABIT configuration: the parameters the paper fine-tunes in Section 4.2.
#pragma once

#include <string>

namespace habit::core {

/// Inverse projection option p (Section 3.3 / Figure 2): how an H3 cell on
/// the imputed path is mapped back to coordinates.
enum class Projection {
  kCellCenter,  ///< p = c: geometric center of the cell
  kDataMedian,  ///< p = w: median of historical AIS positions in the cell
};

const char* ProjectionToString(Projection p);

/// Edge traversal cost used by the A* search (Section 3.3 minimizes
/// transitions, "effectively revealing the most frequent path").
enum class EdgeCostPolicy {
  /// Every transition costs 1 (pure hop count).
  kHops,
  /// Frequent transitions are cheaper: 1 / ln(e + transitions).
  kInverseFrequency,
  /// Hop count with frequency tie-breaking: 1 + 1/(1 + transitions).
  /// This is the default; it minimizes transitions first and prefers the
  /// historically busiest sequence among equal-hop paths.
  kHopsThenFrequency,
};

const char* EdgeCostPolicyToString(EdgeCostPolicy p);

/// \brief Full HABIT configuration.
struct HabitConfig {
  /// H3 grid resolution r (the paper studies 6..10; default 9).
  int resolution = 9;
  /// Inverse projection option p (default: data-driven median).
  Projection projection = Projection::kDataMedian;
  /// RDP simplification tolerance t in meters (paper: 0..1000; default 250;
  /// 0 disables simplification).
  double rdp_tolerance_m = 250.0;
  /// Edge cost policy for the shortest-path search.
  EdgeCostPolicy edge_cost = EdgeCostPolicy::kHopsThenFrequency;
  /// HyperLogLog precision for approximate distinct counts.
  int hll_precision = 12;
  /// Maximum k-ring radius searched when snapping a gap endpoint whose cell
  /// is not a graph node to the nearest node.
  int max_snap_ring = 32;
  /// When a transition jumps over intermediate cells (sparse reporting at a
  /// fine resolution gives h3_grid_distance > 1), also materialize the cells
  /// along the hex grid path between the two endpoints and connect them.
  /// This is the data-driven correction for the information loss introduced
  /// by the H3 discretization; without it the transition graph fragments
  /// when reports are sparser than the cell size.
  bool expand_transitions = true;

  std::string ToString() const;
};

}  // namespace habit::core
