#include "habit/typed_framework.h"

namespace habit::core {

Result<std::unique_ptr<TypedHabitFramework>> TypedHabitFramework::Build(
    const std::vector<ais::Trip>& trips, const HabitConfig& config,
    size_t min_trips_per_type) {
  auto out = std::unique_ptr<TypedHabitFramework>(new TypedHabitFramework());
  HABIT_ASSIGN_OR_RETURN(out->combined_, HabitFramework::Build(trips, config));

  std::map<ais::VesselType, std::vector<ais::Trip>> by_type;
  for (const ais::Trip& t : trips) by_type[t.type].push_back(t);
  for (auto& [type, type_trips] : by_type) {
    if (type_trips.size() < min_trips_per_type) continue;
    auto fw = HabitFramework::Build(type_trips, config);
    // Thin per-type data may fail to form a graph; the combined fallback
    // then serves that type.
    if (fw.ok()) out->typed_.emplace(type, fw.MoveValue());
  }
  return out;
}

Result<Imputation> TypedHabitFramework::Impute(ais::VesselType type,
                                               const geo::LatLng& gap_start,
                                               const geo::LatLng& gap_end,
                                               int64_t t_start,
                                               int64_t t_end) const {
  Imputer::SearchScratch scratch;
  return Impute(type, gap_start, gap_end, t_start, t_end, &scratch);
}

Result<Imputation> TypedHabitFramework::Impute(
    ais::VesselType type, const geo::LatLng& gap_start,
    const geo::LatLng& gap_end, int64_t t_start, int64_t t_end,
    Imputer::SearchScratch* scratch) const {
  const auto it = typed_.find(type);
  if (it != typed_.end()) {
    auto result =
        it->second->Impute(gap_start, gap_end, t_start, t_end, scratch);
    if (result.ok()) return result;
    // A sparse per-type graph may simply not cover this gap (snap failure
    // or disconnected components): retry transparently on the combined
    // graph. Genuine request errors (invalid coordinates, internal faults)
    // would fail identically on the combined graph, so propagate them.
    const StatusCode code = result.status().code();
    if (code != StatusCode::kUnreachable && code != StatusCode::kNotFound) {
      return result;
    }
  }
  return combined_->Impute(gap_start, gap_end, t_start, t_end, scratch);
}

size_t TypedHabitFramework::SizeBytes() const {
  size_t total = combined_->SizeBytes();
  for (const auto& [type, fw] : typed_) total += fw->SizeBytes();
  return total;
}

size_t TypedHabitFramework::SerializedSizeBytes() const {
  size_t total = combined_->SerializedSizeBytes();
  for (const auto& [type, fw] : typed_) total += fw->SerializedSizeBytes();
  return total;
}

}  // namespace habit::core
