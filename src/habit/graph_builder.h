// Graph generation (Section 3.2): projects trips onto the hex grid with a
// minidb CTE — LAG per trip, then two-level aggregation — and assembles the
// transition graph with per-cell statistics.
#pragma once

#include <vector>

#include "ais/ais.h"
#include "core/status.h"
#include "graph/digraph.h"
#include "habit/config.h"
#include "minidb/table.h"

namespace habit::core {

/// \brief Converts trips to the flat AIS table the CTE consumes. Columns:
/// trip_id, mmsi, ts, lon, lat, sog, cog, cell (the H3 cell id at the
/// configured resolution, stored as int64).
db::Table TripsToTable(const std::vector<ais::Trip>& trips, int resolution);

/// \brief The per-cell statistics table (group by cl):
/// cell, cnt, vessels, med_lon, med_lat, med_sog, med_cog.
Result<db::Table> ComputeCellStats(const db::Table& ais_table,
                                   const HabitConfig& config);

/// \brief The transition statistics table (group by (lag_cl, cl), with
/// lag_cl != cl): lag_cell, cell, transitions, grid_distance.
Result<db::Table> ComputeTransitionStats(const db::Table& ais_table,
                                         const HabitConfig& config);

/// \brief Assembles the weighted digraph from the two statistics tables.
/// Nodes carry median lon/lat, message count, distinct vessels; edges carry
/// transition counts and the configured traversal cost.
Result<graph::Digraph> BuildTransitionGraph(const db::Table& cell_stats,
                                            const db::Table& transition_stats,
                                            const HabitConfig& config);

/// Convenience: full Section 3.2 pipeline from trips to graph.
Result<graph::Digraph> BuildGraphFromTrips(const std::vector<ais::Trip>& trips,
                                           const HabitConfig& config);

/// Edge traversal cost under the policy, given a transition count.
double EdgeCost(EdgeCostPolicy policy, int64_t transitions);

}  // namespace habit::core
