// Traffic density maps (the Figure 1 application): per-cell visit counts
// over hex cells, computed from raw trips and optionally densified with
// imputed gap fills so coverage holes stop under-counting lanes.
#pragma once

#include <unordered_map>
#include <vector>

#include "ais/ais.h"
#include "core/status.h"
#include "habit/framework.h"
#include "hexgrid/hexgrid.h"
#include "minidb/table.h"

namespace habit::core {

/// \brief A per-cell traffic density surface.
class DensityMap {
 public:
  explicit DensityMap(int resolution) : resolution_(resolution) {}

  int resolution() const { return resolution_; }
  size_t num_cells() const { return counts_.size(); }

  /// Adds one visit to the cell containing `p` (no-op for invalid points).
  void AddPoint(const geo::LatLng& p);

  /// Adds every point of the trip.
  void AddTrip(const ais::Trip& trip);

  /// Adds a polyline, resampled to `spacing_m` so densities are
  /// geometry-weighted rather than report-rate-weighted.
  void AddPolyline(const geo::Polyline& line, double spacing_m = 500.0);

  /// Visit count of a cell (0 if never seen).
  int64_t CountAt(hex::CellId cell) const;
  int64_t CountAt(const geo::LatLng& p) const;

  /// Maximum count over all cells (0 for an empty map).
  int64_t MaxCount() const;

  /// Exports (cell, lat, lng, count) rows for plotting / storage.
  db::Table ToTable() const;

  const std::unordered_map<hex::CellId, int64_t>& cells() const {
    return counts_;
  }

 private:
  int resolution_;
  std::unordered_map<hex::CellId, int64_t> counts_;
};

/// \brief Builds the "after" density surface of the Figure 1 use case:
/// each trip's internal gaps (silences longer than `gap_threshold_s`) are
/// imputed against `fw`, and the densified trip polylines are accumulated
/// geometry-weighted. Returns the map plus the number of gaps filled.
struct ImputedDensityResult {
  DensityMap map;
  size_t gaps_filled = 0;
  size_t gaps_unfilled = 0;
};
Result<ImputedDensityResult> BuildImputedDensity(
    const std::vector<ais::Trip>& trips, const HabitFramework& fw,
    int resolution, int64_t gap_threshold_s = 30 * 60,
    double spacing_m = 500.0);

}  // namespace habit::core
