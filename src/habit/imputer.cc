#include "habit/imputer.h"

#include <algorithm>
#include <cmath>

#include "graph/landmarks.h"

namespace habit::core {

Imputer::Imputer(const graph::CompactGraph* graph, const HabitConfig& config)
    : graph_(graph), config_(config) {}

std::vector<hex::CellId> Imputer::SnapCandidates(
    const geo::LatLng& p, SnapRole role, size_t max_candidates) const {
  std::vector<hex::CellId> found;
  if (!p.IsValid()) return found;
  const hex::CellId own = hex::LatLngToCell(p, config_.resolution);
  if (own == hex::kInvalidCell) return found;

  // A source must have somewhere to go; a target must be enterable. Both
  // checks are O(1) reads of the frozen graph's degree arrays.
  auto usable = [&](hex::CellId c) {
    const graph::NodeIndex idx = graph_->IndexOf(c);
    if (idx == graph::kInvalidNodeIndex) return false;
    switch (role) {
      case SnapRole::kSource:
        return graph_->OutDegree(idx) > 0;
      case SnapRole::kTarget:
        return graph_->InDegree(idx) > 0;
      case SnapRole::kAny:
        return true;
    }
    return true;
  };
  if (usable(own)) found.push_back(own);

  // Expand rings a few steps beyond the first hit so the search has
  // alternatives when the nearest nodes belong to dead-end fragments.
  int rings_after_hit = 0;
  for (int k = 1; k <= config_.max_snap_ring; ++k) {
    if (!found.empty() && ++rings_after_hit > 12) break;
    if (found.size() >= max_candidates) break;
    for (const hex::CellId c : hex::GridRing(own, k)) {
      if (usable(c)) found.push_back(c);
    }
  }
  // Decorate-sort-undecorate: the cell-center projection and haversine
  // are trig-heavy, so compute them once per candidate instead of once
  // per comparison.
  std::vector<std::pair<double, hex::CellId>> by_distance;
  by_distance.reserve(found.size());
  for (const hex::CellId c : found) {
    by_distance.emplace_back(geo::HaversineMeters(p, hex::CellToLatLng(c)),
                             c);
  }
  std::sort(by_distance.begin(), by_distance.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  found.clear();
  for (const auto& [dist, c] : by_distance) found.push_back(c);
  if (found.size() > max_candidates) found.resize(max_candidates);
  return found;
}

Result<hex::CellId> Imputer::SnapToNode(const geo::LatLng& p) const {
  if (!p.IsValid()) {
    return Status::InvalidArgument("invalid gap endpoint " + p.ToString());
  }
  const std::vector<hex::CellId> candidates =
      SnapCandidates(p, SnapRole::kAny, 1);
  if (candidates.empty()) {
    return Status::Unreachable("no graph node within " +
                               std::to_string(config_.max_snap_ring) +
                               " rings of " + p.ToString());
  }
  return candidates.front();
}

geo::LatLng Imputer::ProjectCell(hex::CellId cell) const {
  if (config_.projection == Projection::kDataMedian) {
    const graph::NodeIndex idx = graph_->IndexOf(cell);
    if (idx != graph::kInvalidNodeIndex && graph_->has_attrs() &&
        graph_->MessageCount(idx) > 0) {
      return graph_->MedianPos(idx);
    }
  }
  return hex::CellToLatLng(cell);
}

Result<Imputation> Imputer::Impute(const geo::LatLng& gap_start,
                                   const geo::LatLng& gap_end,
                                   int64_t t_start, int64_t t_end) const {
  SearchScratch scratch;
  return Impute(gap_start, gap_end, t_start, t_end, &scratch);
}

Result<Imputation> Imputer::Impute(const geo::LatLng& gap_start,
                                   const geo::LatLng& gap_end,
                                   int64_t t_start, int64_t t_end,
                                   SearchScratch* scratch) const {
  if (!gap_start.IsValid() || !gap_end.IsValid()) {
    return Status::InvalidArgument("invalid gap endpoint " +
                                   gap_start.ToString() + " -> " +
                                   gap_end.ToString());
  }
  const std::vector<hex::CellId> src_cands =
      SnapCandidates(gap_start, SnapRole::kSource);
  const std::vector<hex::CellId> dst_cands =
      SnapCandidates(gap_end, SnapRole::kTarget);
  if (src_cands.empty() || dst_cands.empty()) {
    return Status::Unreachable(
        "gap endpoint could not be snapped to the transition graph");
  }

  // Trivial case: both endpoints share a candidate cell.
  for (const hex::CellId s : src_cands) {
    if (s == dst_cands.front() &&
        s == hex::LatLngToCell(gap_end, config_.resolution)) {
      Imputation result;
      result.cells = {s};
      result.path = {gap_start, gap_end};
      result.timestamps = {t_start, t_end};
      return result;
    }
  }

  // Multi-source / multi-target search: every source candidate is seeded
  // with a cost proportional to its snap displacement (so the search
  // prefers nearby, *connected* entry points without committing to one up
  // front); the search settles the first destination candidate reached.
  //
  // Costs are measured in "hops" (edge weights are >= 1 per grid step for
  // the hop-based policies), so displacements are converted via the cell
  // pitch at this resolution.
  const double cell_pitch_m =
      hex::EdgeLengthMeters(config_.resolution) * 1.7320508;

  std::vector<graph::SearchSeed> seeds;
  seeds.reserve(src_cands.size());
  for (const hex::CellId s : src_cands) {
    const graph::NodeIndex idx = graph_->IndexOf(s);
    if (idx == graph::kInvalidNodeIndex) continue;
    const double seed_cost =
        geo::HaversineMeters(gap_start, hex::CellToLatLng(s)) / cell_pitch_m;
    seeds.push_back({idx, seed_cost});
  }

  // Dense target marks over the dst candidates (few dozen at most).
  std::vector<graph::NodeIndex> target_idx;
  target_idx.reserve(dst_cands.size());
  for (const hex::CellId d : dst_cands) {
    const graph::NodeIndex idx = graph_->IndexOf(d);
    if (idx != graph::kInvalidNodeIndex) target_idx.push_back(idx);
  }
  std::sort(target_idx.begin(), target_idx.end());
  auto is_target = [&](graph::NodeIndex u) {
    return std::binary_search(target_idx.begin(), target_idx.end(), u);
  };

  // The baseline is plain Dijkstra (zero heuristic); with landmarks
  // enabled, RunSearchAlt accelerates it through the snapshot's ALT
  // columns while returning byte-identical paths (see graph/landmarks.h).
  const graph::CsrSearch run =
      use_landmarks_ && graph_->num_landmarks() > 0
          ? graph::RunSearchAlt(*graph_, seeds, is_target, target_idx,
                                *scratch)
          : graph::RunSearch(
                *graph_, seeds, is_target,
                [](graph::NodeIndex) { return 0.0; }, *scratch);
  if (!run.found) {
    return Status::Unreachable(
        "no snap candidate pair is connected in the transition graph");
  }

  Imputation result;
  result.expanded = run.expanded;
  for (const graph::NodeIndex i :
       graph::ReconstructPath(*scratch, run.reached)) {
    result.cells.push_back(static_cast<hex::CellId>(graph_->IdOf(i)));
  }

  // Inverse projection (Section 3.3): cells -> coordinates under option p,
  // bracketed by the true gap boundary points.
  geo::Polyline line;
  line.reserve(result.cells.size() + 2);
  line.push_back(gap_start);
  for (const hex::CellId c : result.cells) {
    const geo::LatLng p = ProjectCell(c);
    if (geo::HaversineMeters(line.back(), p) > 1.0) line.push_back(p);
  }
  if (geo::HaversineMeters(line.back(), gap_end) > 1.0 || line.size() == 1) {
    line.push_back(gap_end);
  } else {
    line.back() = gap_end;
  }

  // Section 3.4: RDP simplification for a navigable, smooth path.
  result.path = geo::RdpSimplify(line, config_.rdp_tolerance_m);

  // Timestamps by arc-length interpolation across the gap duration.
  result.timestamps.resize(result.path.size(), t_start);
  const double total = geo::PolylineLengthMeters(result.path);
  if (total > 0 && t_end > t_start) {
    double acc = 0;
    for (size_t i = 1; i < result.path.size(); ++i) {
      acc += geo::HaversineMeters(result.path[i - 1], result.path[i]);
      result.timestamps[i] = t_start + static_cast<int64_t>(std::llround(
                                           (t_end - t_start) * (acc / total)));
    }
  } else if (!result.timestamps.empty()) {
    result.timestamps.back() = t_end;
  }
  return result;
}

}  // namespace habit::core
