#include "habit/imputer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "graph/shortest_path.h"

namespace habit::core {

Imputer::Imputer(const graph::Digraph* graph, const HabitConfig& config)
    : graph_(graph), config_(config) {
  graph_->ForEachEdge([this](graph::NodeId, graph::NodeId v,
                             const graph::EdgeAttrs&) { ++in_degree_[v]; });
}

std::vector<hex::CellId> Imputer::SnapCandidates(
    const geo::LatLng& p, SnapRole role, size_t max_candidates) const {
  std::vector<hex::CellId> found;
  if (!p.IsValid()) return found;
  const hex::CellId own = hex::LatLngToCell(p, config_.resolution);
  if (own == hex::kInvalidCell) return found;

  // A source must have somewhere to go; a target must be enterable.
  auto usable = [&](hex::CellId c) {
    if (!graph_->HasNode(c)) return false;
    switch (role) {
      case SnapRole::kSource:
        return !graph_->OutEdges(c).empty();
      case SnapRole::kTarget:
        return in_degree_.contains(c);
      case SnapRole::kAny:
        return true;
    }
    return true;
  };
  if (usable(own)) found.push_back(own);

  // Expand rings a few steps beyond the first hit so the search has
  // alternatives when the nearest nodes belong to dead-end fragments.
  int rings_after_hit = 0;
  for (int k = 1; k <= config_.max_snap_ring; ++k) {
    if (!found.empty() && ++rings_after_hit > 12) break;
    if (found.size() >= max_candidates) break;
    for (const hex::CellId c : hex::GridRing(own, k)) {
      if (usable(c)) found.push_back(c);
    }
  }
  std::sort(found.begin(), found.end(), [&](hex::CellId a, hex::CellId b) {
    return geo::HaversineMeters(p, hex::CellToLatLng(a)) <
           geo::HaversineMeters(p, hex::CellToLatLng(b));
  });
  if (found.size() > max_candidates) found.resize(max_candidates);
  return found;
}

Result<hex::CellId> Imputer::SnapToNode(const geo::LatLng& p) const {
  if (!p.IsValid()) {
    return Status::InvalidArgument("invalid gap endpoint " + p.ToString());
  }
  const std::vector<hex::CellId> candidates =
      SnapCandidates(p, SnapRole::kAny, 1);
  if (candidates.empty()) {
    return Status::Unreachable("no graph node within " +
                               std::to_string(config_.max_snap_ring) +
                               " rings of " + p.ToString());
  }
  return candidates.front();
}

geo::LatLng Imputer::ProjectCell(hex::CellId cell) const {
  if (config_.projection == Projection::kDataMedian) {
    auto attrs = graph_->GetNode(cell);
    if (attrs.ok() && attrs.value().message_count > 0) {
      return attrs.value().median_pos;
    }
  }
  return hex::CellToLatLng(cell);
}

Result<Imputation> Imputer::Impute(const geo::LatLng& gap_start,
                                   const geo::LatLng& gap_end,
                                   int64_t t_start, int64_t t_end) const {
  SearchScratch scratch;
  return Impute(gap_start, gap_end, t_start, t_end, &scratch);
}

Result<Imputation> Imputer::Impute(const geo::LatLng& gap_start,
                                   const geo::LatLng& gap_end,
                                   int64_t t_start, int64_t t_end,
                                   SearchScratch* scratch) const {
  if (!gap_start.IsValid() || !gap_end.IsValid()) {
    return Status::InvalidArgument("invalid gap endpoint " +
                                   gap_start.ToString() + " -> " +
                                   gap_end.ToString());
  }
  scratch->Reset();
  const std::vector<hex::CellId> src_cands =
      SnapCandidates(gap_start, SnapRole::kSource);
  const std::vector<hex::CellId> dst_cands =
      SnapCandidates(gap_end, SnapRole::kTarget);
  if (src_cands.empty() || dst_cands.empty()) {
    return Status::Unreachable(
        "gap endpoint could not be snapped to the transition graph");
  }

  // Trivial case: both endpoints share a candidate cell.
  for (const hex::CellId s : src_cands) {
    if (s == dst_cands.front() &&
        s == hex::LatLngToCell(gap_end, config_.resolution)) {
      Imputation result;
      result.cells = {s};
      result.path = {gap_start, gap_end};
      result.timestamps = {t_start, t_end};
      return result;
    }
  }

  // Multi-source / multi-target A*: every source candidate is seeded with a
  // cost proportional to its snap displacement (so the search prefers
  // nearby, *connected* entry points without committing to one up front);
  // the search settles the first destination candidate reached.
  //
  // Costs are measured in "hops" (edge weights are >= 1 per grid step for
  // the hop-based policies), so displacements are converted via the cell
  // pitch at this resolution.
  const double cell_pitch_m =
      hex::EdgeLengthMeters(config_.resolution) * 1.7320508;
  const double min_edge_cost =
      config_.edge_cost == EdgeCostPolicy::kInverseFrequency ? 0.05 : 1.0;

  std::unordered_set<graph::NodeId> targets(dst_cands.begin(),
                                            dst_cands.end());
  // Heuristic: grid distance to the destination's own cell, reduced by the
  // candidate spread so it never overestimates the cost to any target.
  const hex::CellId dst_anchor = dst_cands.front();
  int64_t dst_spread = 0;
  for (const hex::CellId d : dst_cands) {
    const auto gd = hex::GridDistance(dst_anchor, d);
    if (gd.ok()) dst_spread = std::max(dst_spread, gd.value());
  }
  auto heuristic = [&](graph::NodeId n) {
    const auto gd = hex::GridDistance(static_cast<hex::CellId>(n), dst_anchor);
    if (!gd.ok()) return 0.0;
    return std::max<double>(0.0, static_cast<double>(gd.value() - dst_spread)) *
           min_edge_cost;
  };

  // Min-heap over the scratch vector (push_heap/pop_heap keep the buffer's
  // capacity alive across batched queries).
  auto& heap = scratch->heap;
  auto& dist = scratch->dist;
  auto& parent = scratch->parent;
  auto& settled = scratch->settled;
  auto& sources = scratch->sources;
  const auto heap_greater = [](const SearchScratch::HeapEntry& a,
                               const SearchScratch::HeapEntry& b) {
    return a.priority > b.priority;
  };
  auto heap_push = [&](double priority, graph::NodeId node) {
    heap.push_back({priority, node});
    std::push_heap(heap.begin(), heap.end(), heap_greater);
  };

  for (const hex::CellId s : src_cands) {
    const double seed_cost =
        geo::HaversineMeters(gap_start, hex::CellToLatLng(s)) / cell_pitch_m;
    auto it = dist.find(s);
    if (it == dist.end() || seed_cost < it->second) {
      dist[s] = seed_cost;
      heap_push(seed_cost + heuristic(s), s);
      sources.insert(s);
    }
  }

  graph::NodeId reached = 0;
  bool found = false;
  size_t expanded = 0;
  while (!heap.empty()) {
    const graph::NodeId u = heap.front().node;
    std::pop_heap(heap.begin(), heap.end(), heap_greater);
    heap.pop_back();
    if (settled.contains(u)) continue;
    settled.insert(u);
    ++expanded;
    if (targets.contains(u)) {
      reached = u;
      found = true;
      break;
    }
    const double du = dist[u];
    for (const auto& [v, attrs] : graph_->OutEdges(u)) {
      if (settled.contains(v)) continue;
      const double cand = du + attrs.weight;
      auto it = dist.find(v);
      if (it == dist.end() || cand < it->second) {
        dist[v] = cand;
        parent[v] = u;
        heap_push(cand + heuristic(v), v);
      }
    }
  }
  if (!found) {
    return Status::Unreachable(
        "no snap candidate pair is connected in the transition graph");
  }

  Imputation result;
  result.expanded = expanded;
  {
    std::vector<hex::CellId> rev;
    graph::NodeId cur = reached;
    rev.push_back(static_cast<hex::CellId>(cur));
    while (!sources.contains(cur) || parent.contains(cur)) {
      auto it = parent.find(cur);
      if (it == parent.end()) break;
      cur = it->second;
      rev.push_back(static_cast<hex::CellId>(cur));
    }
    result.cells.assign(rev.rbegin(), rev.rend());
  }

  // Inverse projection (Section 3.3): cells -> coordinates under option p,
  // bracketed by the true gap boundary points.
  geo::Polyline line;
  line.reserve(result.cells.size() + 2);
  line.push_back(gap_start);
  for (const hex::CellId c : result.cells) {
    const geo::LatLng p = ProjectCell(c);
    if (geo::HaversineMeters(line.back(), p) > 1.0) line.push_back(p);
  }
  if (geo::HaversineMeters(line.back(), gap_end) > 1.0 || line.size() == 1) {
    line.push_back(gap_end);
  } else {
    line.back() = gap_end;
  }

  // Section 3.4: RDP simplification for a navigable, smooth path.
  result.path = geo::RdpSimplify(line, config_.rdp_tolerance_m);

  // Timestamps by arc-length interpolation across the gap duration.
  result.timestamps.resize(result.path.size(), t_start);
  const double total = geo::PolylineLengthMeters(result.path);
  if (total > 0 && t_end > t_start) {
    double acc = 0;
    for (size_t i = 1; i < result.path.size(); ++i) {
      acc += geo::HaversineMeters(result.path[i - 1], result.path[i]);
      result.timestamps[i] = t_start + static_cast<int64_t>(std::llround(
                                           (t_end - t_start) * (acc / total)));
    }
  } else if (!result.timestamps.empty()) {
    result.timestamps.back() = t_end;
  }
  return result;
}

}  // namespace habit::core
