// Model persistence: a built HABIT transition graph is two relational
// tables (node statistics, edge statistics), saved and loaded as CSV via
// minidb. The on-disk artifact is exactly what Table 2 of the paper sizes.
//
// Saving reads the frozen CompactGraph (what a built framework carries);
// loading rebuilds the mutable Digraph, which the caller freezes (e.g. via
// HabitFramework::FromGraph) before serving queries.
#pragma once

#include <memory>
#include <string>

#include "core/status.h"
#include "graph/compact_graph.h"
#include "graph/digraph.h"
#include "habit/config.h"
#include "habit/framework.h"
#include "minidb/table.h"

namespace habit::core {

/// Converts the graph's node statistics to a minidb table with columns:
/// cell, med_lon, med_lat, cnt, vessels, med_sog, med_cog.
db::Table GraphNodesToTable(const graph::CompactGraph& g);

/// Converts the graph's edges to a minidb table with columns:
/// src, dst, transitions, grid_distance.
db::Table GraphEdgesToTable(const graph::CompactGraph& g);

/// Writes the graph as `<prefix>_nodes.csv` and `<prefix>_edges.csv`.
Status SaveGraphCsv(const graph::CompactGraph& g, const std::string& prefix);

/// Rebuilds a graph from files written by SaveGraphCsv. Edge weights are
/// recomputed under the given config's edge-cost policy, so a saved model
/// can be reloaded with a different policy (an ablation the benches use).
/// Fails with kInvalidArgument on structurally corrupt files: invalid cell
/// ids in the nodes table, or edges whose endpoints the nodes table does
/// not contain.
Result<graph::Digraph> LoadGraphCsv(const std::string& prefix,
                                    const HabitConfig& config);

/// Writes a built framework as a binary model snapshot: the build
/// configuration followed by the frozen CSR graph section (snapshot kind
/// kHabitModel). Unlike the CSV pair, the artifact is self-describing —
/// loading needs no spec parameters and cannot run the graph under a
/// mismatched resolution or cost policy.
Status SaveModelSnapshot(const HabitFramework& fw, const std::string& path);

/// Cold-starts a framework from a snapshot written by SaveModelSnapshot:
/// one validated bulk read, no Digraph rebuild, no re-freeze. Imputation
/// output is bit-identical to the framework that was saved. With `mapped`
/// true the CSR arrays are served in place from the mmap'd file
/// (O(page-in) cold start, no heap copy; v1 snapshots silently fall back
/// to copying) — the registry exposes this as "habit:load=...,map=1".
Result<std::unique_ptr<HabitFramework>> LoadModelSnapshot(
    const std::string& path, bool mapped = false);

}  // namespace habit::core
