// Trajectory imputation (Section 3.3) and simplification (Section 3.4):
// snap gap endpoints to graph nodes, run A* over transition costs, project
// the cell sequence back to coordinates (center or data-driven median), and
// smooth the result with RDP.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/status.h"
#include "geo/polyline.h"
#include "graph/digraph.h"
#include "habit/config.h"
#include "hexgrid/hexgrid.h"

namespace habit::core {

/// \brief An imputed gap fill.
struct Imputation {
  /// The imputed path in coordinates, starting at the gap start point and
  /// ending at the gap end point (after inverse projection + RDP).
  geo::Polyline path;
  /// The traversed cell sequence (before simplification).
  std::vector<hex::CellId> cells;
  /// Timestamps assigned to `path` points by arc-length interpolation
  /// between the gap boundary times (same size as `path`).
  std::vector<int64_t> timestamps;
  /// Search effort (settled nodes), for performance analysis.
  size_t expanded = 0;
};

/// \brief Imputes gaps against a prebuilt transition graph.
class Imputer {
 public:
  /// \brief Reusable A* working state (distance/parent tables, settled
  /// sets, and the binary heap).
  ///
  /// A cold query pays for allocating and rehashing these containers; a
  /// batch of queries against the same graph can hand the same scratch to
  /// every call so the hash tables keep their bucket arrays and the heap
  /// its capacity. Owned by the caller, valid for any number of queries.
  struct SearchScratch {
    struct HeapEntry {
      double priority;
      graph::NodeId node;
    };
    std::vector<HeapEntry> heap;
    std::unordered_map<graph::NodeId, double> dist;
    std::unordered_map<graph::NodeId, graph::NodeId> parent;
    std::unordered_set<graph::NodeId> settled;
    std::unordered_set<graph::NodeId> sources;

    /// Empties all containers but keeps their allocations.
    void Reset() {
      heap.clear();
      dist.clear();
      parent.clear();
      settled.clear();
      sources.clear();
    }
  };

  /// The graph must outlive the imputer.
  Imputer(const graph::Digraph* graph, const HabitConfig& config);

  /// \brief Fills the gap between two boundary reports.
  ///
  /// `t_start` / `t_end` are the boundary timestamps used to assign times to
  /// imputed points. Fails with kInvalidArgument for malformed coordinates
  /// and kUnreachable when the graph cannot connect the endpoints
  /// (disconnected components or snap failure).
  Result<Imputation> Impute(const geo::LatLng& gap_start,
                            const geo::LatLng& gap_end, int64_t t_start = 0,
                            int64_t t_end = 0) const;

  /// Same as above but reuses `scratch` for the A* working state, which
  /// amortizes allocation across a batch of queries (the hot path behind
  /// api::ImputationModel::ImputeBatch).
  Result<Imputation> Impute(const geo::LatLng& gap_start,
                            const geo::LatLng& gap_end, int64_t t_start,
                            int64_t t_end, SearchScratch* scratch) const;

  /// Maps a point to its graph node: its own cell if present, else the
  /// nearest node cell by expanding k-ring search (Section 3.3).
  Result<hex::CellId> SnapToNode(const geo::LatLng& p) const;

  /// Where a snap candidate will sit in the search, which decides the
  /// degree filter applied (sources need out-edges, targets in-edges).
  enum class SnapRole { kAny, kSource, kTarget };

  /// Nearby candidate graph nodes for `p`, sorted by distance. Candidates
  /// from several rings are returned so the search can avoid snapping onto
  /// a disconnected fragment or a directed dead-end of the transition graph.
  std::vector<hex::CellId> SnapCandidates(const geo::LatLng& p,
                                          SnapRole role = SnapRole::kAny,
                                          size_t max_candidates = 48) const;

  /// Inverse projection of one cell under the configured option p.
  geo::LatLng ProjectCell(hex::CellId cell) const;

 private:
  const graph::Digraph* graph_;
  HabitConfig config_;
  /// Nodes with at least one incoming edge (out-degree is cheap to query
  /// from the graph; in-degree is precomputed here).
  std::unordered_map<graph::NodeId, int> in_degree_;
};

}  // namespace habit::core
