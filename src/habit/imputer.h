// Trajectory imputation (Section 3.3) and simplification (Section 3.4):
// snap gap endpoints to graph nodes, run the shared CSR A* engine over
// transition costs, project the cell sequence back to coordinates (center
// or data-driven median), and smooth the result with RDP.
#pragma once

#include <vector>

#include "core/status.h"
#include "geo/polyline.h"
#include "graph/compact_graph.h"
#include "graph/search.h"
#include "habit/config.h"
#include "hexgrid/hexgrid.h"

namespace habit::core {

/// \brief An imputed gap fill.
struct Imputation {
  /// The imputed path in coordinates, starting at the gap start point and
  /// ending at the gap end point (after inverse projection + RDP).
  geo::Polyline path;
  /// The traversed cell sequence (before simplification).
  std::vector<hex::CellId> cells;
  /// Timestamps assigned to `path` points by arc-length interpolation
  /// between the gap boundary times (same size as `path`).
  std::vector<int64_t> timestamps;
  /// Search effort (settled nodes), for performance analysis.
  size_t expanded = 0;
};

/// \brief Imputes gaps against a frozen transition graph.
///
/// The imputer owns no search state of its own: all queries run through the
/// flat graph::SearchScratch (generation-stamped distance/parent/settled
/// arrays keyed by dense NodeIndex), either a per-call local one or a
/// caller-owned scratch shared across a batch.
class Imputer {
 public:
  /// Reusable search working state (one per querying thread).
  using SearchScratch = graph::SearchScratch;

  /// The frozen graph must outlive the imputer.
  Imputer(const graph::CompactGraph* graph, const HabitConfig& config);

  /// \brief Fills the gap between two boundary reports.
  ///
  /// `t_start` / `t_end` are the boundary timestamps used to assign times to
  /// imputed points. Fails with kInvalidArgument for malformed coordinates
  /// and kUnreachable when the graph cannot connect the endpoints
  /// (disconnected components or snap failure).
  Result<Imputation> Impute(const geo::LatLng& gap_start,
                            const geo::LatLng& gap_end, int64_t t_start = 0,
                            int64_t t_end = 0) const;

  /// Same as above but reuses `scratch` for the search working state, which
  /// amortizes allocation across a batch of queries (the hot path behind
  /// api::ImputationModel::ImputeBatch).
  Result<Imputation> Impute(const geo::LatLng& gap_start,
                            const geo::LatLng& gap_end, int64_t t_start,
                            int64_t t_end, SearchScratch* scratch) const;

  /// Maps a point to its graph node: its own cell if present, else the
  /// nearest node cell by expanding k-ring search (Section 3.3).
  Result<hex::CellId> SnapToNode(const geo::LatLng& p) const;

  /// Where a snap candidate will sit in the search, which decides the
  /// degree filter applied (sources need out-edges, targets in-edges).
  enum class SnapRole { kAny, kSource, kTarget };

  /// Nearby candidate graph nodes for `p`, sorted by distance. Candidates
  /// from several rings are returned so the search can avoid snapping onto
  /// a disconnected fragment or a directed dead-end of the transition
  /// graph; the role filter reads the frozen graph's out-/in-degree arrays.
  std::vector<hex::CellId> SnapCandidates(const geo::LatLng& p,
                                          SnapRole role = SnapRole::kAny,
                                          size_t max_candidates = 48) const;

  /// Inverse projection of one cell under the configured option p.
  geo::LatLng ProjectCell(hex::CellId cell) const;

  /// Turns ALT landmark acceleration on or off for subsequent queries.
  /// Only effective when the frozen graph carries landmark columns (a v3
  /// snapshot saved with landmarks=k); otherwise queries stay on the plain
  /// zero-heuristic baseline. On or off, imputed outputs are identical.
  void set_use_landmarks(bool on) { use_landmarks_ = on; }
  bool use_landmarks() const { return use_landmarks_; }

 private:
  const graph::CompactGraph* graph_;
  HabitConfig config_;
  bool use_landmarks_ = false;
};

}  // namespace habit::core
